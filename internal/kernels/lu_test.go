package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestBlockedLUReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct{ n, block int }{
		{4, 2}, {8, 4}, {16, 4}, {12, 5}, {17, 4}, {9, 9}, {1, 1},
	} {
		a := DiagonallyDominant(tc.n, rng)
		var c opcount.Counter
		packed, err := BlockedLU(LUSpec{N: tc.n, Block: tc.block}, a, &c)
		if err != nil {
			t.Fatalf("n=%d block=%d: %v", tc.n, tc.block, err)
		}
		recon := ReconstructLU(packed)
		if diff := recon.MaxAbsDiff(a); diff > 1e-9*float64(tc.n) {
			t.Errorf("n=%d block=%d: ‖LU - A‖ = %g", tc.n, tc.block, diff)
		}
	}
}

func TestBlockedLUMatchesUnblocked(t *testing.T) {
	// The packed factors must be independent of the block size (same
	// algorithm, different schedule).
	rng := rand.New(rand.NewSource(11))
	n := 16
	a := DiagonallyDominant(n, rng)
	var c opcount.Counter
	ref, err := BlockedLU(LUSpec{N: n, Block: n}, a, &c)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 4, 8, 5, 7} {
		var c2 opcount.Counter
		got, err := BlockedLU(LUSpec{N: n, Block: bs}, a, &c2)
		if err != nil {
			t.Fatalf("block=%d: %v", bs, err)
		}
		if diff := got.MaxAbsDiff(ref); diff > 1e-9 {
			t.Errorf("block=%d: factors differ from unblocked by %g", bs, diff)
		}
	}
}

func TestBlockedLUCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ n, block int }{
		{8, 2}, {16, 4}, {12, 5}, {17, 4}, {10, 10},
	} {
		spec := LUSpec{N: tc.n, Block: tc.block}
		a := DiagonallyDominant(tc.n, rng)
		var c opcount.Counter
		if _, err := BlockedLU(spec, a, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountBlockedLU(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("n=%d block=%d: run counted %+v, closed form %+v", tc.n, tc.block, got, want)
		}
	}
}

func TestLUZeroPivotDetected(t *testing.T) {
	a := NewDense(2, 2) // all zeros
	var c opcount.Counter
	if _, err := BlockedLU(LUSpec{N: 2, Block: 2}, a, &c); err == nil {
		t.Error("zero pivot not detected")
	}
}

// TestLUFlopsMatchTheory: total flops ≈ (2/3)N³ for N ≫ b.
func TestLUFlopsMatchTheory(t *testing.T) {
	n := 256
	tot, err := CountBlockedLU(LUSpec{N: n, Block: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 3.0 * math.Pow(float64(n), 3)
	if rel := math.Abs(float64(tot.Ops)-want) / want; rel > 0.10 {
		t.Errorf("flops = %d, want ≈ %.0f (got %.1f%% off)", tot.Ops, want, rel*100)
	}
}

// TestLURatioGrowsWithBlock verifies the §3.2 claim: the per-run ratio grows
// linearly in b = √M.
func TestLURatioGrowsWithBlock(t *testing.T) {
	n := 1024
	r8, err := CountBlockedLU(LUSpec{N: n, Block: 8})
	if err != nil {
		t.Fatal(err)
	}
	r32, err := CountBlockedLU(LUSpec{N: n, Block: 32})
	if err != nil {
		t.Fatal(err)
	}
	gain := r32.Ratio() / r8.Ratio()
	// 4× block → 16× memory → ratio should grow ≈4× (√16).
	if gain < 3.2 || gain > 4.8 {
		t.Errorf("ratio gain for 4× block = %v, want ≈ 4", gain)
	}
}

func TestLUSpecValidation(t *testing.T) {
	bad := []LUSpec{{N: 0, Block: 1}, {N: 4, Block: 0}, {N: 4, Block: 8}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if got := (LUSpec{N: 100, Block: 10}).Memory(); got != 300 {
		t.Errorf("Memory = %d, want 300", got)
	}
	if got := (LUSpec{N: 100, Block: 10}).Steps(); got != 10 {
		t.Errorf("Steps = %d, want 10", got)
	}
}

func TestGivensQR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 5, 16, 32} {
		a := NewDenseRandom(n, n, rng)
		var c opcount.Counter
		u, q, err := GivensQR(a, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !u.IsUpperTriangular(1e-10) {
			t.Errorf("n=%d: U not upper triangular", n)
		}
		// QA = U.
		qa := q.MulRef(a)
		if diff := qa.MaxAbsDiff(u); diff > 1e-9*float64(n+1) {
			t.Errorf("n=%d: ‖QA - U‖ = %g", n, diff)
		}
		// Q orthogonal: QᵀQ = I.
		qt := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				qt.Set(i, j, q.At(j, i))
			}
		}
		qtq := qt.MulRef(q)
		eye := NewDense(n, n)
		for i := 0; i < n; i++ {
			eye.Set(i, i, 1)
		}
		if diff := qtq.MaxAbsDiff(eye); diff > 1e-9*float64(n+1) {
			t.Errorf("n=%d: ‖QᵀQ - I‖ = %g", n, diff)
		}
		if n > 1 && c.Ccomp() == 0 {
			t.Errorf("n=%d: no operations counted", n)
		}
	}
}

func TestGivensQRRejectsNonSquare(t *testing.T) {
	var c opcount.Counter
	if _, _, err := GivensQR(NewDense(3, 4), &c); err == nil {
		t.Error("non-square matrix accepted")
	}
}

// Property: LU reconstruction holds for random diagonally dominant systems.
func TestBlockedLUProperty(t *testing.T) {
	f := func(seed int64, n8, b8 uint8) bool {
		n := 2 + int(n8%14)
		bs := 1 + int(b8)%n
		rng := rand.New(rand.NewSource(seed))
		a := DiagonallyDominant(n, rng)
		var c opcount.Counter
		packed, err := BlockedLU(LUSpec{N: n, Block: bs}, a, &c)
		if err != nil {
			return false
		}
		return ReconstructLU(packed).MaxAbsDiff(a) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
