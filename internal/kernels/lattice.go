package kernels

import "fmt"

// Lattice provides row-major indexing for a d-dimensional box, used by the
// grid relaxation kernel (§3.3) for arbitrary dimensionality.
type Lattice struct {
	Sizes   []int // extent per dimension
	strides []int // strides[d] = Π of later extents
	length  int
}

// NewLattice builds the index helper for a box with the given extents.
func NewLattice(sizes ...int) *Lattice {
	if len(sizes) == 0 {
		panic("kernels: lattice needs at least one dimension")
	}
	l := &Lattice{Sizes: append([]int(nil), sizes...), strides: make([]int, len(sizes))}
	n := 1
	for d := len(sizes) - 1; d >= 0; d-- {
		if sizes[d] <= 0 {
			panic(fmt.Sprintf("kernels: lattice extent %d in dim %d must be positive", sizes[d], d))
		}
		l.strides[d] = n
		n *= sizes[d]
	}
	l.length = n
	return l
}

// Len returns the number of lattice points.
func (l *Lattice) Len() int { return l.length }

// Dim returns the number of dimensions.
func (l *Lattice) Dim() int { return len(l.Sizes) }

// Index maps coordinates to the flat index.
func (l *Lattice) Index(coords []int) int {
	idx := 0
	for d, c := range coords {
		if c < 0 || c >= l.Sizes[d] {
			panic(fmt.Sprintf("kernels: coordinate %d out of range [0,%d) in dim %d", c, l.Sizes[d], d))
		}
		idx += c * l.strides[d]
	}
	return idx
}

// Coords writes the coordinates of flat index idx into out (len ≥ Dim).
func (l *Lattice) Coords(idx int, out []int) {
	for d := range l.Sizes {
		out[d] = idx / l.strides[d]
		idx %= l.strides[d]
	}
}

// Stride returns the flat-index stride of dimension d.
func (l *Lattice) Stride(d int) int { return l.strides[d] }

// OnBoundary reports whether the given coordinates touch any face of the box.
func (l *Lattice) OnBoundary(coords []int) bool {
	for d, c := range coords {
		if c == 0 || c == l.Sizes[d]-1 {
			return true
		}
	}
	return false
}
