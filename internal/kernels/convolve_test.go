package kernels

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestConvolveCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, tc := range []struct{ n, k int }{
		{1, 1}, {8, 1}, {8, 3}, {16, 16}, {100, 7}, {64, 5},
	} {
		x := make([]float64, tc.n)
		h := make([]float64, tc.k)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		for i := range h {
			h[i] = 2*rng.Float64() - 1
		}
		var c opcount.Counter
		got, err := Convolve(ConvolveSpec{N: tc.n, Taps: tc.k}, x, h, &c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := ConvolveRef(x, h)
		if len(got) != len(want) {
			t.Fatalf("%+v: length %d, want %d", tc, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12*float64(tc.k) {
				t.Errorf("%+v: y[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

func TestConvolveCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, tc := range []struct{ n, k int }{{8, 3}, {100, 7}, {64, 64}} {
		spec := ConvolveSpec{N: tc.n, Taps: tc.k}
		x := make([]float64, tc.n)
		h := make([]float64, tc.k)
		for i := range x {
			x[i] = rng.Float64()
		}
		var c opcount.Counter
		if _, err := Convolve(spec, x, h, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountConvolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("%+v: run counted %+v, closed form %+v", tc, got, want)
		}
	}
}

// TestConvolveRatioIsOperatorBound: the ratio equals ≈ k for N ≫ k and does
// not move with extra memory — the third balance family.
func TestConvolveRatioIsOperatorBound(t *testing.T) {
	n := 1 << 20
	for _, k := range []int{4, 16, 64} {
		tot, err := CountConvolve(ConvolveSpec{N: n, Taps: k})
		if err != nil {
			t.Fatal(err)
		}
		// R = 2k·N/(2N) → k as N ≫ k.
		if r := tot.Ratio(); math.Abs(r-float64(k))/float64(k) > 0.01 {
			t.Errorf("k=%d: ratio = %v, want ≈ %d", k, r, k)
		}
	}
}

func TestConvolveValidation(t *testing.T) {
	for _, s := range []ConvolveSpec{{N: 0, Taps: 1}, {N: 4, Taps: 0}, {N: 4, Taps: 5}} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	var c opcount.Counter
	if _, err := Convolve(ConvolveSpec{N: 4, Taps: 2}, make([]float64, 3), make([]float64, 2), &c); err == nil {
		t.Error("length mismatch accepted")
	}
	if got := (ConvolveSpec{N: 100, Taps: 8}).Memory(); got != 16 {
		t.Errorf("Memory = %d, want 16", got)
	}
}

func TestConvolveRatioSweep(t *testing.T) {
	pts, err := ConvolveRatioSweep(context.Background(), 1<<16, []int{2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Ratio doubles with taps (and with the 2k-word memory footprint):
	// linear in the operator, unlike any §3 family.
	for i := 1; i < len(pts); i++ {
		gain := pts[i].Ratio() / pts[i-1].Ratio()
		if gain < 1.9 || gain > 2.1 {
			t.Errorf("tap doubling gain = %v, want ≈ 2", gain)
		}
	}
}

// Property: convolution against a delta filter reproduces the signal.
func TestConvolveDeltaProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 2 + int(n8%60)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		h := []float64{1} // identity
		var c opcount.Counter
		got, err := Convolve(ConvolveSpec{N: n, Taps: 1}, x, h, &c)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
