package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestMatVecCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, tc := range []struct{ n, chunk int }{
		{4, 2}, {16, 4}, {17, 5}, {8, 8}, {1, 1},
	} {
		a := NewDenseRandom(tc.n, tc.n, rng)
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		var c opcount.Counter
		got, err := MatVec(MatVecSpec{N: tc.n, Chunk: tc.chunk}, a, x, &c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := 0; i < tc.n; i++ {
			var want float64
			for j := 0; j < tc.n; j++ {
				want += a.At(i, j) * x[j]
			}
			if math.Abs(got[i]-want) > 1e-10*float64(tc.n) {
				t.Errorf("n=%d chunk=%d: y[%d] = %v, want %v", tc.n, tc.chunk, i, got[i], want)
			}
		}
	}
}

func TestMatVecCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, tc := range []struct{ n, chunk int }{{8, 2}, {16, 4}, {17, 5}, {9, 9}} {
		spec := MatVecSpec{N: tc.n, Chunk: tc.chunk}
		a := NewDenseRandom(tc.n, tc.n, rng)
		x := make([]float64, tc.n)
		var c opcount.Counter
		if _, err := MatVec(spec, a, x, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountMatVec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("%+v: run counted %+v, closed form %+v", tc, got, want)
		}
	}
}

// TestMatVecRatioBoundedByTwo verifies the §3.6 impossibility: the ratio
// never exceeds 2 no matter how much local memory the scheme uses.
func TestMatVecRatioBoundedByTwo(t *testing.T) {
	n := 1024
	var prev float64
	for _, chunk := range []int{1, 4, 16, 64, 256, 1024} {
		tot, err := CountMatVec(MatVecSpec{N: n, Chunk: chunk})
		if err != nil {
			t.Fatal(err)
		}
		r := tot.Ratio()
		if r > 2 {
			t.Errorf("chunk=%d: ratio %v exceeds 2", chunk, r)
		}
		if r < prev {
			t.Errorf("chunk=%d: ratio %v decreased from %v", chunk, r, prev)
		}
		prev = r
	}
	// Even at maximal chunk the ratio stays pinned near 2: the spread
	// across three orders of magnitude of memory must be small.
	small, _ := CountMatVec(MatVecSpec{N: n, Chunk: 16})
	big, _ := CountMatVec(MatVecSpec{N: n, Chunk: 1024})
	if gain := big.Ratio() / small.Ratio(); gain > 1.1 {
		t.Errorf("64× memory bought ratio gain %v; should be ≈ 1 (I/O bounded)", gain)
	}
}

func TestTriSolveCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, tc := range []struct{ n, chunk int }{
		{4, 2}, {16, 4}, {17, 5}, {8, 8}, {1, 1}, {10, 3},
	} {
		// Build a well-conditioned lower-triangular system.
		l := NewDense(tc.n, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, (2*rng.Float64()-1)/float64(tc.n))
			}
			l.Set(i, i, 1+rng.Float64())
		}
		want := make([]float64, tc.n)
		for i := range want {
			want[i] = 2*rng.Float64() - 1
		}
		// b = L·want.
		b := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := 0; j <= i; j++ {
				b[i] += l.At(i, j) * want[j]
			}
		}
		var c opcount.Counter
		got, err := TriSolve(TriSolveSpec{N: tc.n, Chunk: tc.chunk}, l, b, &c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("n=%d chunk=%d: x[%d] = %v, want %v", tc.n, tc.chunk, i, got[i], want[i])
			}
		}
	}
}

func TestTriSolveCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, tc := range []struct{ n, chunk int }{{8, 2}, {16, 4}, {17, 5}, {6, 6}} {
		spec := TriSolveSpec{N: tc.n, Chunk: tc.chunk}
		l := NewDense(tc.n, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < i; j++ {
				l.Set(i, j, rng.Float64())
			}
			l.Set(i, i, 1)
		}
		b := make([]float64, tc.n)
		var c opcount.Counter
		if _, err := TriSolve(spec, l, b, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountTriSolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("%+v: run counted %+v, closed form %+v", tc, got, want)
		}
	}
}

func TestTriSolveRatioBounded(t *testing.T) {
	n := 1024
	small, err := CountTriSolve(TriSolveSpec{N: n, Chunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	big, err := CountTriSolve(TriSolveSpec{N: n, Chunk: 512})
	if err != nil {
		t.Fatal(err)
	}
	if small.Ratio() > 2.1 || big.Ratio() > 2.1 {
		t.Errorf("trisolve ratios %v, %v exceed 2", small.Ratio(), big.Ratio())
	}
	if gain := big.Ratio() / small.Ratio(); gain > 1.15 {
		t.Errorf("32× memory bought ratio gain %v; should be ≈ 1", gain)
	}
}

func TestTriSolveZeroDiagonal(t *testing.T) {
	l := NewDense(2, 2)
	l.Set(1, 0, 1) // diagonal (1,1) left zero
	l.Set(0, 0, 1)
	var c opcount.Counter
	if _, err := TriSolve(TriSolveSpec{N: 2, Chunk: 2}, l, []float64{1, 1}, &c); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestIOBoundSpecValidation(t *testing.T) {
	for _, s := range []MatVecSpec{{N: 0, Chunk: 1}, {N: 4, Chunk: 0}, {N: 4, Chunk: 5}} {
		if err := s.Validate(); err == nil {
			t.Errorf("matvec spec %+v accepted", s)
		}
	}
	for _, s := range []TriSolveSpec{{N: 0, Chunk: 1}, {N: 4, Chunk: 0}, {N: 4, Chunk: 5}} {
		if err := s.Validate(); err == nil {
			t.Errorf("trisolve spec %+v accepted", s)
		}
	}
}

// Property: matvec flop count is exactly 2N² regardless of chunking, and A's
// traffic is exactly N² — the "every input used a constant number of times"
// structure of §3.6.
func TestMatVecInvariantsProperty(t *testing.T) {
	f := func(c8 uint8) bool {
		n := 96
		chunk := 1 + int(c8%96)
		tot, err := CountMatVec(MatVecSpec{N: n, Chunk: chunk})
		if err != nil {
			return false
		}
		nn := uint64(n)
		if tot.Ops != 2*nn*nn {
			return false
		}
		// reads = A (N²) + x per chunk (N·ceil(N/chunk)); writes = N.
		chunks := uint64((n + chunk - 1) / chunk)
		return tot.Reads == nn*nn+nn*chunks && tot.Writes == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
