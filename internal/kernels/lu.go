package kernels

import (
	"context"
	"fmt"
	"math"

	"balarch/internal/opcount"
)

// LUSpec describes the §3.2 blocked triangularization scheme: the N×N matrix
// is processed in N/b panel steps with b×b tiles; each step factorizes one
// diagonal tile, solves the row and column panels against it, and applies a
// rank-b update to the trailing matrix, streaming tiles through a local
// memory that holds at most three of them.
type LUSpec struct {
	// N is the matrix dimension.
	N int
	// Block is the tile side b; the paper sets b = √M.
	Block int
}

// Validate checks the spec's invariants.
func (s LUSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("kernels: LU N=%d must be positive", s.N)
	}
	if s.Block <= 0 || s.Block > s.N {
		return fmt.Errorf("kernels: LU block=%d must be in [1, N=%d]", s.Block, s.N)
	}
	return nil
}

// Memory returns the local memory footprint in words: three resident b×b
// tiles (the multiplier tile, the update tile, and the destination tile
// during the trailing update).
func (s LUSpec) Memory() int { return 3 * s.Block * s.Block }

// Steps returns the number of panel steps.
func (s LUSpec) Steps() int { return (s.N + s.Block - 1) / s.Block }

// BlockedLU factorizes a (in a copy) into unit-lower L and upper U stored
// packed in the returned matrix (L below the diagonal with implicit unit
// diagonal, U on and above), using the tiled right-looking scheme and
// recording exact arithmetic and I/O word counts. No pivoting is performed;
// callers must supply a matrix for which elimination without pivoting is
// stable (tests use diagonally dominant matrices).
func BlockedLU(spec LUSpec, a *Dense, c *opcount.Counter) (*Dense, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n, bs := spec.N, spec.Block
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("kernels: LU operand must be %d×%d", n, n)
	}
	m := a.Clone()

	for s0 := 0; s0 < n; s0 += bs {
		r := min(bs, n-s0) // diagonal tile side this step

		// Factorize the diagonal tile in local memory:
		// read r², factor, write r².
		c.Read(r * r)
		for k := s0; k < s0+r; k++ {
			piv := m.At(k, k)
			if piv == 0 {
				return nil, fmt.Errorf("kernels: zero pivot at %d (no pivoting)", k)
			}
			for i := k + 1; i < s0+r; i++ {
				l := m.At(i, k) / piv
				c.Ops(1)
				m.Set(i, k, l)
				for j := k + 1; j < s0+r; j++ {
					m.Set(i, j, m.At(i, j)-l*m.At(k, j))
				}
				c.Ops(2 * (s0 + r - k - 1))
			}
		}
		c.Write(r * r)

		// Column panel: L[i][s] = A[i][s]·U_ss⁻¹, tile by tile. The
		// factored diagonal tile stays resident.
		for i0 := s0 + r; i0 < n; i0 += bs {
			ri := min(bs, n-i0)
			c.Read(ri * r)
			for i := i0; i < i0+ri; i++ {
				for k := s0; k < s0+r; k++ {
					sum := m.At(i, k)
					for j := s0; j < k; j++ {
						sum -= m.At(i, j) * m.At(j, k)
					}
					m.Set(i, k, sum/m.At(k, k))
					c.Ops(2*(k-s0) + 1)
				}
			}
			c.Write(ri * r)
		}

		// Row panel: U[s][j] = L_ss⁻¹·A[s][j] (unit lower solve).
		for j0 := s0 + r; j0 < n; j0 += bs {
			cj := min(bs, n-j0)
			c.Read(r * cj)
			for j := j0; j < j0+cj; j++ {
				for k := s0; k < s0+r; k++ {
					sum := m.At(k, j)
					for i := s0; i < k; i++ {
						sum -= m.At(k, i) * m.At(i, j)
					}
					m.Set(k, j, sum)
					c.Ops(2 * (k - s0))
				}
			}
			c.Write(r * cj)
		}

		// Trailing update: A[i][j] -= L[i][s]·U[s][j]. The L tile is
		// held across the inner j sweep.
		for i0 := s0 + r; i0 < n; i0 += bs {
			ri := min(bs, n-i0)
			c.Read(ri * r) // L[i][s] tile, held for the row sweep
			for j0 := s0 + r; j0 < n; j0 += bs {
				cj := min(bs, n-j0)
				c.Read(r*cj + ri*cj) // U tile + destination tile
				for i := i0; i < i0+ri; i++ {
					for j := j0; j < j0+cj; j++ {
						sum := m.At(i, j)
						for k := s0; k < s0+r; k++ {
							sum -= m.At(i, k) * m.At(k, j)
						}
						m.Set(i, j, sum)
					}
				}
				c.Ops(2 * ri * r * cj)
				c.Write(ri * cj)
			}
		}
	}
	return m, nil
}

// CountBlockedLU walks the same tile structure as BlockedLU without
// arithmetic, returning identical counts in O((N/b)²) time per step.
func CountBlockedLU(spec LUSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	n, bs := spec.N, spec.Block
	var t opcount.Totals
	for s0 := 0; s0 < n; s0 += bs {
		r := uint64(min(bs, n-s0))

		// Diagonal tile: flops = Σ_{m=1}^{r-1} m + 2m² .
		t.Reads += r * r
		var diagOps uint64
		for m := uint64(1); m < r; m++ {
			diagOps += m + 2*m*m
		}
		t.Ops += diagOps
		t.Writes += r * r

		// Per-row triangular solve against U_ss: Σ_{k=0}^{r-1} (2k+1) = r².
		// Per-column unit-lower solve: Σ_{k=0}^{r-1} 2k = r(r-1).
		for i0 := s0 + int(r); i0 < n; i0 += bs {
			ri := uint64(min(bs, n-i0))
			t.Reads += ri * r
			t.Ops += ri * r * r
			t.Writes += ri * r
		}
		for j0 := s0 + int(r); j0 < n; j0 += bs {
			cj := uint64(min(bs, n-j0))
			t.Reads += r * cj
			t.Ops += cj * r * (r - 1)
			t.Writes += r * cj
		}
		for i0 := s0 + int(r); i0 < n; i0 += bs {
			ri := uint64(min(bs, n-i0))
			t.Reads += ri * r
			for j0 := s0 + int(r); j0 < n; j0 += bs {
				cj := uint64(min(bs, n-j0))
				t.Reads += r*cj + ri*cj
				t.Ops += 2 * ri * r * cj
				t.Writes += ri * cj
			}
		}
	}
	return t, nil
}

// LURatioSweep measures the blocked triangularization ratio across block
// sizes at fixed N for the E3 experiment. Points run in parallel via Sweep.
func LURatioSweep(ctx context.Context, n int, blocks []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, blocks, func(_ context.Context, bs int, c *opcount.Counter) (int, error) {
		spec := LUSpec{N: n, Block: bs}
		t, err := CountBlockedLU(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}

// ReconstructLU multiplies the packed L and U factors back together, for
// validating BlockedLU against the original matrix.
func ReconstructLU(packed *Dense) *Dense {
	n := packed.Rows
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			// (L·U)(i,j) = Σ_k L(i,k)·U(k,j), L unit lower, U upper.
			hi := min(i, j)
			for k := 0; k <= hi; k++ {
				var l float64
				if k == i {
					l = 1
				} else {
					l = packed.At(i, k)
				}
				sum += l * packed.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// GivensQR triangularizes a copy of a with Givens rotations, returning the
// upper-triangular factor U and the orthogonal factor Q such that Q·A = U
// (paper §3.2 names Givens rotation as a standard triangularization
// algorithm; it is also the kernel of the Gentleman–Kung systolic array).
// Arithmetic operations are counted; the streaming I/O analysis of §3.2 is
// exercised by the blocked LU kernel.
func GivensQR(a *Dense, c *opcount.Counter) (u, q *Dense, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("kernels: GivensQR requires a square matrix")
	}
	n := a.Rows
	u = a.Clone()
	q = NewDense(n, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	for j := 0; j < n; j++ {
		for i := n - 1; i > j; i-- {
			// Rotate rows (i-1, i) to zero u(i, j).
			x, y := u.At(i-1, j), u.At(i, j)
			if y == 0 {
				continue
			}
			r := math.Hypot(x, y)
			cs, sn := x/r, y/r
			c.Ops(6) // hypot (≈4) + two divides
			applyGivens(u, i-1, i, cs, sn, j)
			c.Ops(6 * (n - j))
			applyGivens(q, i-1, i, cs, sn, 0)
			c.Ops(6 * n)
		}
	}
	return u, q, nil
}

// applyGivens rotates rows r0 and r1 of m by (cs, sn) starting at column lo.
func applyGivens(m *Dense, r0, r1 int, cs, sn float64, lo int) {
	for j := lo; j < m.Cols; j++ {
		a, b := m.At(r0, j), m.At(r1, j)
		m.Set(r0, j, cs*a+sn*b)
		m.Set(r1, j, -sn*a+cs*b)
	}
}
