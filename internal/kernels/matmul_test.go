package kernels

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestBlockedMatMulCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, block int }{
		{4, 2}, {8, 4}, {16, 4}, {16, 16}, {12, 5}, {17, 4}, {9, 3}, {7, 7}, {1, 1},
	} {
		a := NewDenseRandom(tc.n, tc.n, rng)
		b := NewDenseRandom(tc.n, tc.n, rng)
		var c opcount.Counter
		got, err := BlockedMatMul(MatMulSpec{N: tc.n, Block: tc.block}, a, b, &c)
		if err != nil {
			t.Fatalf("n=%d block=%d: %v", tc.n, tc.block, err)
		}
		want := a.MulRef(b)
		if diff := got.MaxAbsDiff(want); diff > 1e-12*float64(tc.n) {
			t.Errorf("n=%d block=%d: max diff %g vs reference", tc.n, tc.block, diff)
		}
	}
}

func TestBlockedMatMulCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, block int }{
		{8, 2}, {16, 4}, {12, 5}, {17, 4}, {6, 6},
	} {
		spec := MatMulSpec{N: tc.n, Block: tc.block}
		a := NewDenseRandom(tc.n, tc.n, rng)
		b := NewDenseRandom(tc.n, tc.n, rng)
		var c opcount.Counter
		if _, err := BlockedMatMul(spec, a, b, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountBlockedMatMul(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("n=%d block=%d: run counted %+v, closed form %+v", tc.n, tc.block, got, want)
		}
	}
}

func TestBlockedMatMulExactCounts(t *testing.T) {
	// For N divisible by b: Ccomp = 2N³, Creads = (N/b)²·N·2b = 2N²·N/b·b...
	// reads = (N/b)² · N(b+b) = 2N³/b, writes = N².
	spec := MatMulSpec{N: 64, Block: 8}
	got, err := CountBlockedMatMul(spec)
	if err != nil {
		t.Fatal(err)
	}
	n, b := uint64(64), uint64(8)
	if want := 2 * n * n * n; got.Ops != want {
		t.Errorf("ops = %d, want %d", got.Ops, want)
	}
	if want := 2 * n * n * n / b; got.Reads != want {
		t.Errorf("reads = %d, want %d", got.Reads, want)
	}
	if want := n * n; got.Writes != want {
		t.Errorf("writes = %d, want %d", got.Writes, want)
	}
}

// TestMatMulRatioApproachesSqrtM verifies the §3.1 claim: as N ≫ M, the
// achieved Ccomp/Cio approaches √M = b (with M = b²).
func TestMatMulRatioApproachesSqrtM(t *testing.T) {
	b := 16
	spec := MatMulSpec{N: 4096, Block: b}
	tot, err := CountBlockedMatMul(spec)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tot.Ratio()
	// ratio = 2N b² / (2Nb + b²) → b as N → ∞.
	if math.Abs(ratio-float64(b))/float64(b) > 0.01 {
		t.Errorf("ratio = %v, want ≈ %d (within 1%%)", ratio, b)
	}
}

func TestNaiveMatMulCorrectAndIOHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	a := NewDenseRandom(n, n, rng)
	b := NewDenseRandom(n, n, rng)
	var c opcount.Counter
	got, err := NaiveMatMul(a, b, &c)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got.MaxAbsDiff(a.MulRef(b)); diff > 1e-12 {
		t.Errorf("naive matmul wrong by %g", diff)
	}
	// Naive scheme: 2N³ reads — ratio stuck at ~1 regardless of N.
	nn := uint64(n)
	if c.Reads() != 2*nn*nn*nn {
		t.Errorf("naive reads = %d, want %d", c.Reads(), 2*nn*nn*nn)
	}
	if r := c.Ratio(); r > 1 {
		t.Errorf("naive ratio = %v, want ≤ 1", r)
	}
}

func TestMatMulSpecValidation(t *testing.T) {
	bad := []MatMulSpec{{N: 0, Block: 1}, {N: 4, Block: 0}, {N: 4, Block: 8}, {N: -1, Block: 1}}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
		if _, err := CountBlockedMatMul(s); err == nil {
			t.Errorf("count of %+v accepted", s)
		}
	}
	var c opcount.Counter
	a := NewDense(4, 4)
	if _, err := BlockedMatMul(MatMulSpec{N: 8, Block: 2}, a, a, &c); err == nil {
		t.Error("mismatched operand shape accepted")
	}
}

func TestMatMulSpecAccessors(t *testing.T) {
	s := MatMulSpec{N: 100, Block: 10}
	if got := s.Memory(); got != 120 {
		t.Errorf("Memory = %d, want 120", got)
	}
	if got := s.Steps(); got != 100 {
		t.Errorf("Steps = %d, want 100", got)
	}
	ragged := MatMulSpec{N: 101, Block: 10}
	if got := ragged.Steps(); got != 121 {
		t.Errorf("ragged Steps = %d, want 121", got)
	}
}

func TestMatMulRatioSweepMonotone(t *testing.T) {
	pts, err := MatMulRatioSweep(context.Background(), 2048, []int{4, 8, 16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio() <= pts[i-1].Ratio() {
			t.Errorf("ratio not increasing at %d: %v then %v", i, pts[i-1].Ratio(), pts[i].Ratio())
		}
		if pts[i].Memory <= pts[i-1].Memory {
			t.Errorf("memory not increasing at %d", i)
		}
	}
}

// Property: blocked and reference products agree for random shapes.
func TestBlockedMatMulProperty(t *testing.T) {
	f := func(seed int64, n8, b8 uint8) bool {
		n := 1 + int(n8%12)
		bs := 1 + int(b8)%n
		rng := rand.New(rand.NewSource(seed))
		a := NewDenseRandom(n, n, rng)
		b := NewDenseRandom(n, n, rng)
		var c opcount.Counter
		got, err := BlockedMatMul(MatMulSpec{N: n, Block: bs}, a, b, &c)
		if err != nil {
			return false
		}
		return got.MaxAbsDiff(a.MulRef(b)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: total flops are decomposition-invariant (2N³ for any block size)
// while reads strictly shrink as the block grows.
func TestMatMulWorkInvariantProperty(t *testing.T) {
	f := func(b8 uint8) bool {
		n := 60
		bs := 1 + int(b8%60)
		tot, err := CountBlockedMatMul(MatMulSpec{N: n, Block: bs})
		if err != nil {
			return false
		}
		nn := uint64(n)
		return tot.Ops == 2*nn*nn*nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
