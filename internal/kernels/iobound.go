package kernels

import (
	"context"
	"fmt"

	"balarch/internal/opcount"
)

// The §3.6 kernels: computations whose inputs and intermediate results are
// used only a constant number of times on average, so no local memory size
// reduces their I/O requirement below a constant fraction of the arithmetic
// — the PE cannot be rebalanced by memory alone.

// MatVecSpec describes a blocked y = A·x with an N-long result computed in
// chunks of Chunk rows held resident while the matrix streams past once.
type MatVecSpec struct {
	// N is the matrix dimension.
	N int
	// Chunk is the number of result elements held in local memory.
	Chunk int
}

// Validate checks the spec's invariants.
func (s MatVecSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("kernels: matvec N=%d must be positive", s.N)
	}
	if s.Chunk <= 0 || s.Chunk > s.N {
		return fmt.Errorf("kernels: matvec chunk=%d must be in [1, N=%d]", s.Chunk, s.N)
	}
	return nil
}

// Memory returns the local footprint in words: the resident result chunk,
// one streamed column segment of A, and the current x element.
func (s MatVecSpec) Memory() int { return 2*s.Chunk + 1 }

// MatVec computes y = a·x with the row-chunked streaming scheme, counting
// flops and I/O words. Every element of A is read exactly once; x is re-read
// once per row chunk; y is written once. The ratio Ccomp/Cio therefore tends
// to 2 regardless of the chunk size — the paper's impossibility result.
func MatVec(spec MatVecSpec, a *Dense, x []float64, c *opcount.Counter) ([]float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.N
	if a.Rows != n || a.Cols != n || len(x) != n {
		return nil, fmt.Errorf("kernels: matvec operands must be %d×%d and length %d", n, n, n)
	}
	y := make([]float64, n)
	seg := make([]float64, spec.Chunk)
	for r0 := 0; r0 < n; r0 += spec.Chunk {
		rows := min(spec.Chunk, n-r0)
		local := make([]float64, rows) // resident y chunk
		for k := 0; k < n; k++ {
			xk := x[k]
			c.Read(1) // x[k]
			for i := 0; i < rows; i++ {
				seg[i] = a.At(r0+i, k)
			}
			c.Read(rows) // column segment of A
			for i := 0; i < rows; i++ {
				local[i] += xk * seg[i]
			}
			c.Ops(2 * rows)
		}
		copy(y[r0:r0+rows], local)
		c.Write(rows)
	}
	return y, nil
}

// CountMatVec returns the counts MatVec would record, in O(N/chunk) time.
func CountMatVec(spec MatVecSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	n := uint64(spec.N)
	var t opcount.Totals
	for r0 := 0; r0 < spec.N; r0 += spec.Chunk {
		rows := uint64(min(spec.Chunk, spec.N-r0))
		t.Reads += n + n*rows
		t.Ops += 2 * n * rows
		t.Writes += rows
	}
	return t, nil
}

// TriSolveSpec describes a blocked forward substitution L·x = b with x
// computed Chunk elements at a time; previously computed x chunks are
// re-read from outside as needed, and every element of L streams past once.
type TriSolveSpec struct {
	// N is the system dimension.
	N int
	// Chunk is the number of solution elements computed per block.
	Chunk int
}

// Validate checks the spec's invariants.
func (s TriSolveSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("kernels: trisolve N=%d must be positive", s.N)
	}
	if s.Chunk <= 0 || s.Chunk > s.N {
		return fmt.Errorf("kernels: trisolve chunk=%d must be in [1, N=%d]", s.Chunk, s.N)
	}
	return nil
}

// Memory returns the local footprint in words: the resident x/b chunk, one
// prior-x buffer, and one streamed row segment.
func (s TriSolveSpec) Memory() int { return 3 * s.Chunk }

// TriSolve solves l·x = b by chunked forward substitution, counting flops
// and I/O words. The lower-triangular half of l is read exactly once; prior
// x chunks are re-read once per later chunk; the ratio tends to 2 for all
// chunk sizes — I/O bounded like matvec.
func TriSolve(spec TriSolveSpec, l *Dense, b []float64, c *opcount.Counter) ([]float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.N
	if l.Rows != n || l.Cols != n || len(b) != n {
		return nil, fmt.Errorf("kernels: trisolve operands must be %d×%d and length %d", n, n, n)
	}
	x := make([]float64, n)
	prior := make([]float64, spec.Chunk)
	seg := make([]float64, spec.Chunk)
	for c0 := 0; c0 < n; c0 += spec.Chunk {
		rows := min(spec.Chunk, n-c0)
		local := make([]float64, rows)
		copy(local, b[c0:c0+rows])
		c.Read(rows) // b chunk

		// Eliminate contributions from previously solved chunks.
		for p0 := 0; p0 < c0; p0 += spec.Chunk {
			pl := min(spec.Chunk, c0-p0)
			copy(prior[:pl], x[p0:p0+pl])
			c.Read(pl) // prior x chunk, re-read from outside
			for i := 0; i < rows; i++ {
				row := c0 + i
				for j := 0; j < pl; j++ {
					seg[j] = l.At(row, p0+j)
				}
				c.Read(pl) // row segment of L
				sum := local[i]
				for j := 0; j < pl; j++ {
					sum -= seg[j] * prior[j]
				}
				local[i] = sum
				c.Ops(2 * pl)
			}
		}

		// Solve the diagonal block, streaming its rows.
		for i := 0; i < rows; i++ {
			row := c0 + i
			for j := 0; j <= i; j++ {
				seg[j] = l.At(row, c0+j)
			}
			c.Read(i + 1) // row segment incl. diagonal
			sum := local[i]
			for j := 0; j < i; j++ {
				sum -= seg[j] * local[j]
			}
			c.Ops(2*i + 1)
			if seg[i] == 0 {
				return nil, fmt.Errorf("kernels: zero diagonal at %d", row)
			}
			local[i] = sum / seg[i]
		}
		copy(x[c0:c0+rows], local)
		c.Write(rows)
	}
	return x, nil
}

// CountTriSolve returns the counts TriSolve would record, in O((N/chunk)²)
// time.
func CountTriSolve(spec TriSolveSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	var t opcount.Totals
	for c0 := 0; c0 < spec.N; c0 += spec.Chunk {
		rows := uint64(min(spec.Chunk, spec.N-c0))
		t.Reads += rows
		for p0 := 0; p0 < c0; p0 += spec.Chunk {
			pl := uint64(min(spec.Chunk, c0-p0))
			t.Reads += pl + rows*pl
			t.Ops += 2 * rows * pl
		}
		for i := uint64(0); i < rows; i++ {
			t.Reads += i + 1
			t.Ops += 2*i + 1
		}
		t.Writes += rows
	}
	return t, nil
}

// MatVecRatioSweep measures the matvec ratio across chunk sizes for the E7
// experiment, demonstrating the flat (I/O-bounded) profile. Points run in
// parallel via Sweep.
func MatVecRatioSweep(ctx context.Context, n int, chunks []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, chunks, func(_ context.Context, ch int, c *opcount.Counter) (int, error) {
		spec := MatVecSpec{N: n, Chunk: ch}
		t, err := CountMatVec(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}

// TriSolveRatioSweep measures the trisolve ratio across chunk sizes for the
// E7 experiment. Points run in parallel via Sweep.
func TriSolveRatioSweep(ctx context.Context, n int, chunks []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, chunks, func(_ context.Context, ch int, c *opcount.Counter) (int, error) {
		spec := TriSolveSpec{N: n, Chunk: ch}
		t, err := CountTriSolve(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}
