package kernels

import (
	"math"
	"testing"
)

func TestLUStepTotalsSumToWhole(t *testing.T) {
	spec := LUSpec{N: 256, Block: 16}
	steps, err := LUStepTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != spec.Steps() {
		t.Fatalf("got %d steps, want %d", len(steps), spec.Steps())
	}
	whole, err := CountBlockedLU(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ops, reads, writes uint64
	for _, s := range steps {
		ops += s.Ops
		reads += s.Reads
		writes += s.Writes
	}
	if ops != whole.Ops || reads != whole.Reads || writes != whole.Writes {
		t.Errorf("step sums (%d,%d,%d) != whole (%d,%d,%d)",
			ops, reads, writes, whole.Ops, whole.Reads, whole.Writes)
	}
}

// TestLUSameRatioAllSteps is the §3.2 sentence as a test: "The same ratio is
// maintained for all the steps" — the per-step Ccomp/Cio stays near-constant
// until the trailing matrix shrinks to a few tiles.
func TestLUSameRatioAllSteps(t *testing.T) {
	spec := LUSpec{N: 1024, Block: 16}
	steps, err := LUStepTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Examine the first 3/4 of the steps (the paper's regime N' ≫ b).
	upto := len(steps) * 3 / 4
	first := steps[0].Ratio()
	for i := 1; i < upto; i++ {
		r := steps[i].Ratio()
		if math.Abs(r-first)/first > 0.10 {
			t.Errorf("step %d ratio %v drifted more than 10%% from step 0's %v", i, r, first)
		}
	}
	// And the ratio is ≈ 2b/3 (trailing update dominates: 2·b flops per
	// 3 words of tile traffic).
	want := 2.0 * float64(spec.Block) / 3.0
	if math.Abs(first-want)/want > 0.15 {
		t.Errorf("step-0 ratio %v far from 2b/3 = %v", first, want)
	}
}

func TestFFTPassTotalsUniform(t *testing.T) {
	spec := FFTSpec{N: 1 << 12, Block: 16} // 12 stages in 3 full passes
	passes, err := FFTPassTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != spec.Passes() {
		t.Fatalf("got %d passes, want %d", len(passes), spec.Passes())
	}
	for i, p := range passes {
		if p != passes[0] {
			t.Errorf("pass %d = %+v differs from pass 0 = %+v (all passes must be identical)", i, p, passes[0])
		}
	}
	// Sum equals the whole-run count.
	whole, err := CountBlockedFFT(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ops, reads, writes uint64
	for _, p := range passes {
		ops += p.Ops
		reads += p.Reads
		writes += p.Writes
	}
	if ops != whole.Ops || reads != whole.Reads || writes != whole.Writes {
		t.Error("pass sums do not equal whole-run counts")
	}
}

func TestFFTPassTotalsRaggedLast(t *testing.T) {
	spec := FFTSpec{N: 128, Block: 8} // 7 stages: passes of 3,3,1
	passes, err := FFTPassTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 {
		t.Fatalf("got %d passes, want 3", len(passes))
	}
	if passes[0] != passes[1] {
		t.Error("full passes differ")
	}
	if passes[2].Ops >= passes[0].Ops {
		t.Error("ragged final pass should do fewer butterflies")
	}
	if passes[2].Reads != passes[0].Reads {
		t.Error("every pass still reads all N points")
	}
}

func TestMatMulStepTotalsIdentical(t *testing.T) {
	spec := MatMulSpec{N: 256, Block: 16}
	steps, err := MatMulStepTotals(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != spec.Steps() {
		t.Fatalf("got %d steps, want %d", len(steps), spec.Steps())
	}
	for i, s := range steps {
		if s != steps[0] {
			t.Errorf("step %d differs from step 0 for divisible N", i)
		}
	}
	// Per-step ratio ≈ √M (b): 2Nb²/(2Nb + b²) → b.
	r := steps[0].Ratio()
	if math.Abs(r-16)/16 > 0.05 {
		t.Errorf("per-step ratio %v, want ≈ 16", r)
	}
}

func TestStepTotalsValidation(t *testing.T) {
	if _, err := LUStepTotals(LUSpec{N: 0, Block: 1}); err == nil {
		t.Error("bad LU spec accepted")
	}
	if _, err := FFTPassTotals(FFTSpec{N: 12, Block: 4}); err == nil {
		t.Error("bad FFT spec accepted")
	}
	if _, err := MatMulStepTotals(MatMulSpec{N: 4, Block: 8}); err == nil {
		t.Error("bad matmul spec accepted")
	}
}
