package kernels

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestRandomCSRValid(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	m := NewRandomCSR(64, 8, rng)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 64*8 {
		t.Errorf("NNZ = %d, want 512", m.NNZ())
	}
	// Columns sorted and unique within each row.
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i] + 1; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k-1] >= m.ColIdx[k] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
	}
}

func TestCSRValidateRejectsBroken(t *testing.T) {
	good := &CSR{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 1}, Val: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := []*CSR{
		{Rows: 0, Cols: 2, RowPtr: []int{0}, ColIdx: nil, Val: nil},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1}, ColIdx: []int{0}, Val: []float64{1}},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 2, 1}, ColIdx: []int{0, 1}, Val: []float64{1, 2}},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 2}, ColIdx: []int{0, 5}, Val: []float64{1, 2}},
		{Rows: 2, Cols: 2, RowPtr: []int{0, 1, 1}, ColIdx: []int{0, 1}, Val: []float64{1, 2}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: broken CSR accepted", i)
		}
	}
}

func TestSpMVCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, tc := range []struct{ n, nnzPerRow, chunk int }{
		{8, 2, 2}, {32, 4, 8}, {33, 5, 7}, {16, 16, 16},
	} {
		a := NewRandomCSR(tc.n, tc.nnzPerRow, rng)
		x := make([]float64, tc.n)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
		}
		var c opcount.Counter
		got, err := SpMV(SpMVSpec{N: tc.n, Chunk: tc.chunk}, a, x, &c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := SpMVRef(a, x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10*float64(tc.nnzPerRow) {
				t.Errorf("%+v: y[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

func TestSpMVCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, tc := range []struct{ n, nnzPerRow, chunk int }{{16, 3, 4}, {33, 5, 7}} {
		spec := SpMVSpec{N: tc.n, Chunk: tc.chunk}
		a := NewRandomCSR(tc.n, tc.nnzPerRow, rng)
		x := make([]float64, tc.n)
		var c opcount.Counter
		if _, err := SpMV(spec, a, x, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountSpMV(spec, a.NNZ())
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("%+v: run counted %+v, closed form %+v", tc, got, want)
		}
	}
}

// TestSpMVRatioFlat: sparse matvec is memory-inelastic — the §4 remark about
// sparse operations' "relatively high I/O requirements" as measurement.
func TestSpMVRatioFlat(t *testing.T) {
	pts, err := SpMVRatioSweep(context.Background(), 4096, 8, []int{16, 64, 256, 1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if r := p.Ratio(); r > 0.7 {
			t.Errorf("memory %d: ratio %v exceeds 2/3+ε", p.Memory, r)
		}
	}
	if gain := pts[len(pts)-1].Ratio() / pts[0].Ratio(); gain > 1.01 {
		t.Errorf("256× memory bought ratio gain %v; sparse SpMV must be flat", gain)
	}
}

func TestSpMVValidation(t *testing.T) {
	for _, s := range []SpMVSpec{{N: 0, Chunk: 1}, {N: 4, Chunk: 0}, {N: 4, Chunk: 5}} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	if _, err := CountSpMV(SpMVSpec{N: 4, Chunk: 2}, -1); err == nil {
		t.Error("negative nnz accepted")
	}
	rng := rand.New(rand.NewSource(83))
	a := NewRandomCSR(8, 2, rng)
	var c opcount.Counter
	if _, err := SpMV(SpMVSpec{N: 16, Chunk: 4}, a, make([]float64, 16), &c); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestNewRandomCSRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nnzPerRow > n did not panic")
		}
	}()
	NewRandomCSR(4, 5, rand.New(rand.NewSource(1)))
}

// Property: SpMV against the identity-ish diagonal reproduces x scaled.
func TestSpMVDiagonalProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := 1 + int(n8%40)
		rng := rand.New(rand.NewSource(seed))
		// Diagonal CSR with entries d[i].
		m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
		d := make([]float64, n)
		for i := 0; i < n; i++ {
			d[i] = 1 + rng.Float64()
			m.ColIdx = append(m.ColIdx, i)
			m.Val = append(m.Val, d[i])
			m.RowPtr[i+1] = i + 1
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		var c opcount.Counter
		y, err := SpMV(SpMVSpec{N: n, Chunk: 1 + n/2}, m, x, &c)
		if err != nil {
			return false
		}
		for i := range y {
			if math.Abs(y[i]-d[i]*x[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
