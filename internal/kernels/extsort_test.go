package kernels

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func randomKeys(n int, rng *rand.Rand) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	return keys
}

func isSorted(keys []int64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestHeapSortKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, n := range []int{0, 1, 2, 3, 10, 100, 1000} {
		keys := randomKeys(n, rng)
		orig := append([]int64(nil), keys...)
		var c opcount.Counter
		HeapSortKeys(keys, &c)
		if !isSorted(keys) {
			t.Errorf("n=%d: not sorted", n)
		}
		if !sameMultiset(keys, orig) {
			t.Errorf("n=%d: keys lost or duplicated", n)
		}
	}
}

func TestHeapSortComparisonCount(t *testing.T) {
	// Heapsort comparisons are ≈ 2n·log₂n; check within a factor 2 band.
	rng := rand.New(rand.NewSource(41))
	n := 4096
	keys := randomKeys(n, rng)
	var c opcount.Counter
	HeapSortKeys(keys, &c)
	ideal := 2 * float64(n) * math.Log2(float64(n))
	got := float64(c.Ccomp())
	if got < ideal/2 || got > ideal*2 {
		t.Errorf("comparisons = %v, want within [%.0f, %.0f]", got, ideal/2, ideal*2)
	}
}

func TestExternalSortCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []SortSpec{
		{N: 0, M: 4},
		{N: 1, M: 4},
		{N: 16, M: 4},
		{N: 100, M: 8},   // ragged last run
		{N: 1000, M: 10}, // 100 runs, fan-in 10 → two merge levels
		{N: 256, M: 16},
		{N: 500, M: 3}, // deep merge tree
	}
	for _, spec := range cases {
		input := randomKeys(spec.N, rng)
		orig := append([]int64(nil), input...)
		var c opcount.Counter
		out, err := ExternalSort(spec, input, &c)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if !isSorted(out) {
			t.Errorf("%+v: output not sorted", spec)
		}
		if spec.N > 0 && !sameMultiset(out, orig) {
			t.Errorf("%+v: output not a permutation of input", spec)
		}
		if !sameMultiset(input, orig) {
			t.Errorf("%+v: input was modified", spec)
		}
	}
}

func TestExternalSortAlreadySortedAndReversed(t *testing.T) {
	n := 512
	asc := make([]int64, n)
	desc := make([]int64, n)
	for i := 0; i < n; i++ {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
	}
	for _, input := range [][]int64{asc, desc} {
		var c opcount.Counter
		out, err := ExternalSort(SortSpec{N: n, M: 16}, input, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !isSorted(out) {
			t.Fatal("not sorted")
		}
	}
}

func TestExternalSortDuplicateKeys(t *testing.T) {
	n := 300
	input := make([]int64, n)
	for i := range input {
		input[i] = int64(i % 7)
	}
	var c opcount.Counter
	out, err := ExternalSort(SortSpec{N: n, M: 8}, input, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !isSorted(out) || !sameMultiset(out, input) {
		t.Fatal("duplicate-heavy input mishandled")
	}
}

func TestExternalSortIOTraffic(t *testing.T) {
	// Single merge level (N = M²): every key crosses the boundary twice
	// per phase → Cio = 4N + M (the heap primes one extra read per run).
	m := 32
	n := m * m
	rng := rand.New(rand.NewSource(43))
	input := randomKeys(n, rng)
	var c opcount.Counter
	if _, err := ExternalSort(SortSpec{N: n, M: m}, input, &c); err != nil {
		t.Fatal(err)
	}
	wantIO := uint64(4 * n)
	if c.Cio() < wantIO || c.Cio() > wantIO+uint64(2*m) {
		t.Errorf("Cio = %d, want ≈ %d", c.Cio(), wantIO)
	}
}

// TestSortRatioGrowsLogarithmically verifies the §3.5 claim: doubling log₂M
// roughly doubles the comparisons-per-word ratio.
func TestSortRatioGrowsLogarithmically(t *testing.T) {
	pts, err := SortRatioSweep(context.Background(), []int{16, 256}, 44)
	if err != nil {
		t.Fatal(err)
	}
	gain := pts[1].Ratio() / pts[0].Ratio()
	// log₂256 / log₂16 = 8/4 = 2; allow a generous band for heap constants.
	if gain < 1.5 || gain > 2.6 {
		t.Errorf("ratio gain from M=16 to M=256 = %v, want ≈ 2", gain)
	}
}

func TestSortSpecValidation(t *testing.T) {
	for _, s := range []SortSpec{{N: -1, M: 4}, {N: 10, M: 1}, {N: 10, M: 0}} {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	var c opcount.Counter
	if _, err := ExternalSort(SortSpec{N: 5, M: 4}, make([]int64, 3), &c); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMergePasses(t *testing.T) {
	cases := []struct {
		spec SortSpec
		want int
	}{
		{SortSpec{N: 16, M: 4}, 1},    // 4 runs, fan-in 4
		{SortSpec{N: 64, M: 4}, 2},    // 16 runs → 4 → 1
		{SortSpec{N: 4, M: 4}, 0},     // single run
		{SortSpec{N: 1000, M: 10}, 2}, // 100 runs → 10 → 1
	}
	for _, tc := range cases {
		if got := tc.spec.MergePasses(); got != tc.want {
			t.Errorf("%+v: MergePasses = %d, want %d", tc.spec, got, tc.want)
		}
	}
}

// Property: external sort equals the standard library sort for any input.
func TestExternalSortProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, m8 uint8) bool {
		n := int(n16 % 600)
		m := 2 + int(m8%30)
		rng := rand.New(rand.NewSource(seed))
		input := randomKeys(n, rng)
		want := append([]int64(nil), input...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var c opcount.Counter
		got, err := ExternalSort(SortSpec{N: n, M: m}, input, &c)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return n == 0 && got == nil
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExternalSortPhasedBothPhasesLogM is §3.5's per-phase sentence as a
// test: "Therefore for both phases, we have Ccomp/Cio = O(log₂M)" — each
// phase individually tracks log₂M, not just the aggregate.
func TestExternalSortPhasedBothPhasesLogM(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	type phaseRatios struct{ p1, p2 float64 }
	byM := map[int]phaseRatios{}
	for _, m := range []int{32, 256} {
		n := m * m // one genuine M-way merge in phase 2
		input := randomKeys(n, rng)
		out, p1, p2, err := ExternalSortPhased(SortSpec{N: n, M: m}, input)
		if err != nil {
			t.Fatal(err)
		}
		if !isSorted(out) {
			t.Fatal("phased sort produced unsorted output")
		}
		byM[m] = phaseRatios{p1.Ratio(), p2.Ratio()}
		// Phase 1: heapsort ≈ 2·log₂M comparisons per 2 words moved.
		ideal := math.Log2(float64(m))
		if r := p1.Ratio(); r < ideal*0.6 || r > ideal*1.6 {
			t.Errorf("M=%d: phase-1 ratio %v far from log₂M = %v", m, r, ideal)
		}
		if r := p2.Ratio(); r < ideal*0.6 || r > ideal*1.6 {
			t.Errorf("M=%d: phase-2 ratio %v far from log₂M = %v", m, r, ideal)
		}
	}
	// Tripling log₂M (32→256: 5→8 bits... 8/5 = 1.6) scales both phases.
	for phase, pair := range map[string][2]float64{
		"phase1": {byM[32].p1, byM[256].p1},
		"phase2": {byM[32].p2, byM[256].p2},
	} {
		gain := pair[1] / pair[0]
		if gain < 1.3 || gain > 2.0 {
			t.Errorf("%s: ratio gain 32→256 = %v, want ≈ 1.6", phase, gain)
		}
	}
}

// TestPhasedMatchesAggregate: the phased accounting must sum to exactly the
// single-counter run.
func TestPhasedMatchesAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n, m := 900, 16
	input := randomKeys(n, rng)
	var c opcount.Counter
	if _, err := ExternalSort(SortSpec{N: n, M: m}, input, &c); err != nil {
		t.Fatal(err)
	}
	_, p1, p2, err := ExternalSortPhased(SortSpec{N: n, M: m}, input)
	if err != nil {
		t.Fatal(err)
	}
	whole := c.Snapshot()
	if p1.Ops+p2.Ops != whole.Ops || p1.Cio()+p2.Cio() != whole.Cio() {
		t.Errorf("phases (%+v + %+v) != whole %+v", p1, p2, whole)
	}
}
