package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"balarch/internal/opcount"
)

func TestLattice(t *testing.T) {
	l := NewLattice(3, 4, 5)
	if l.Len() != 60 {
		t.Fatalf("Len = %d, want 60", l.Len())
	}
	if l.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", l.Dim())
	}
	coords := []int{2, 1, 3}
	idx := l.Index(coords)
	if idx != 2*20+1*5+3 {
		t.Errorf("Index(%v) = %d", coords, idx)
	}
	back := make([]int, 3)
	l.Coords(idx, back)
	for d := range coords {
		if back[d] != coords[d] {
			t.Errorf("Coords round trip: %v vs %v", back, coords)
		}
	}
	if !l.OnBoundary([]int{0, 2, 2}) {
		t.Error("face point not detected as boundary")
	}
	if l.OnBoundary([]int{1, 2, 3}) {
		t.Error("interior point reported as boundary")
	}
}

func TestLatticeRoundTripProperty(t *testing.T) {
	l := NewLattice(4, 7, 3, 5)
	out := make([]int, 4)
	f := func(i16 uint16) bool {
		idx := int(i16) % l.Len()
		l.Coords(idx, out)
		return l.Index(out) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatticePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLattice() },
		func() { NewLattice(3, 0) },
		func() { NewLattice(3, 3).Index([]int{3, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRelaxTiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	cases := []GridSpec{
		{Dim: 1, Size: 32, Tile: 8, Iters: 5},
		{Dim: 2, Size: 16, Tile: 4, Iters: 3},
		{Dim: 2, Size: 17, Tile: 5, Iters: 3}, // ragged tiles
		{Dim: 3, Size: 8, Tile: 4, Iters: 2},
		{Dim: 3, Size: 9, Tile: 4, Iters: 2},
		{Dim: 4, Size: 5, Tile: 3, Iters: 2},
	}
	for _, spec := range cases {
		g := NewGridRandom(spec.Dim, spec.Size, rng)
		want := RelaxReference(g, spec.Iters)
		var c opcount.Counter
		got, err := RelaxTiled(spec, g, &c)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if diff := got.MaxAbsDiff(want); diff != 0 {
			t.Errorf("%+v: tiled differs from reference by %g (must be bit-identical)", spec, diff)
		}
	}
}

func TestRelaxTiledCountsMatchRun(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []GridSpec{
		{Dim: 1, Size: 32, Tile: 8, Iters: 4},
		{Dim: 2, Size: 16, Tile: 4, Iters: 2},
		{Dim: 2, Size: 17, Tile: 5, Iters: 2},
		{Dim: 3, Size: 9, Tile: 4, Iters: 1},
	}
	for _, spec := range cases {
		g := NewGridRandom(spec.Dim, spec.Size, rng)
		var c opcount.Counter
		if _, err := RelaxTiled(spec, g, &c); err != nil {
			t.Fatal(err)
		}
		want, err := CountRelaxTiled(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Snapshot(); got != want {
			t.Errorf("%+v: run counted %+v, closed form %+v", spec, got, want)
		}
	}
}

func TestRelaxConvergesToBoundaryValue(t *testing.T) {
	// All-zero boundary, random interior: relaxation must contract the
	// interior toward zero (the harmonic solution for zero boundary).
	// The slowest Jacobi mode contracts by ≈ 0.98 per sweep on a 12-wide
	// grid, so 1200 sweeps shrink it below 1e-10.
	spec := GridSpec{Dim: 2, Size: 12, Tile: 4, Iters: 1200}
	g := NewGrid(2, 12)
	rng := rand.New(rand.NewSource(22))
	coords := make([]int, 2)
	for idx := range g.Data {
		g.Lat.Coords(idx, coords)
		if !g.Lat.OnBoundary(coords) {
			g.Data[idx] = rng.Float64()
		}
	}
	var c opcount.Counter
	out, err := RelaxTiled(spec, g, &c)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for idx, v := range out.Data {
		out.Lat.Coords(idx, coords)
		if !out.Lat.OnBoundary(coords) {
			worst = math.Max(worst, math.Abs(v))
		}
	}
	if worst > 1e-6 {
		t.Errorf("interior max after 200 iters = %g, want ≈ 0", worst)
	}
}

// TestGridRatioScalesAsRoot verifies the §3.3 claim R(M) = Θ(M^(1/d)) for
// d = 1, 2, 3: quadrupling the tile volume should scale the interior ratio
// by ≈ 4^(1/d).
func TestGridRatioScalesAsRoot(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		// size ≫ tile so interior tiles dominate (count-only, so large
		// sizes are cheap).
		size := map[int]int{1: 16384, 2: 2048, 3: 512}[d]
		t1, t2 := 4, 16
		a, err := CountRelaxTiled(GridSpec{Dim: d, Size: size, Tile: t1, Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := CountRelaxTiled(GridSpec{Dim: d, Size: size, Tile: t2, Iters: 1})
		if err != nil {
			t.Fatal(err)
		}
		gain := b.Ratio() / a.Ratio()
		// Tile side ×4 → volume ×4^d → ratio ×(4^d)^(1/d) = ×4.
		if gain < 3.5 || gain > 4.5 {
			t.Errorf("d=%d: ratio gain = %v, want ≈ 4", d, gain)
		}
	}
}

func TestGridSpecAccessors(t *testing.T) {
	s := GridSpec{Dim: 3, Size: 64, Tile: 4, Iters: 1}
	if got := s.TileVolume(); got != 64 {
		t.Errorf("TileVolume = %d, want 64", got)
	}
	// 4³ + 2·3·4² = 64 + 96 = 160.
	if got := s.Memory(); got != 160 {
		t.Errorf("Memory = %d, want 160", got)
	}
	if got := s.stencilOps(); got != 13 {
		t.Errorf("stencilOps = %d, want 13", got)
	}
}

func TestGridSpecValidation(t *testing.T) {
	bad := []GridSpec{
		{Dim: 0, Size: 8, Tile: 2, Iters: 1},
		{Dim: 2, Size: 2, Tile: 1, Iters: 1},
		{Dim: 2, Size: 8, Tile: 9, Iters: 1},
		{Dim: 2, Size: 8, Tile: 2, Iters: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
	var c opcount.Counter
	g := NewGrid(2, 8)
	if _, err := RelaxTiled(GridSpec{Dim: 2, Size: 9, Tile: 3, Iters: 1}, g, &c); err == nil {
		t.Error("mismatched grid shape accepted")
	}
}

// Property: halo traffic is independent of the data and linear in the
// iteration count.
func TestGridCountsLinearInIters(t *testing.T) {
	f := func(it8 uint8) bool {
		iters := 1 + int(it8%8)
		one, err := CountRelaxTiled(GridSpec{Dim: 2, Size: 20, Tile: 5, Iters: 1})
		if err != nil {
			return false
		}
		many, err := CountRelaxTiled(GridSpec{Dim: 2, Size: 20, Tile: 5, Iters: iters})
		if err != nil {
			return false
		}
		k := uint64(iters)
		return many.Ops == k*one.Ops && many.Reads == k*one.Reads && many.Writes == k*one.Writes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
