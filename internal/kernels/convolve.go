package kernels

import (
	"context"
	"fmt"

	"balarch/internal/opcount"
)

// ConvolveSpec describes a k-tap FIR convolution over N samples — an
// extension in the spirit of the paper's §5 ("the methodology ... can be
// used for many other computations"). The kernel streams the signal once
// past a resident tap vector and a k-deep delay line, so each input word is
// used exactly k times:
//
//	Ccomp = 2kN, Cio = 2N  ⇒  R(M) = k for every M ≥ 2k + O(1).
//
// The ratio is set by the operator (k), not the memory — a third family
// beside the paper's memory-elastic computations (§3.1–§3.5) and its
// memory-inelastic ones (§3.6): enlarging M beyond the operator's footprint
// buys nothing, but enlarging the operator rebalances without more memory
// than 2k words.
type ConvolveSpec struct {
	// N is the number of input samples.
	N int
	// Taps is the filter length k.
	Taps int
}

// Validate checks the spec's invariants.
func (s ConvolveSpec) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("kernels: convolve N=%d must be ≥ 1", s.N)
	}
	if s.Taps < 1 || s.Taps > s.N {
		return fmt.Errorf("kernels: convolve taps=%d must be in [1, N=%d]", s.Taps, s.N)
	}
	return nil
}

// Memory returns the local footprint in words: the tap vector plus the
// delay line.
func (s ConvolveSpec) Memory() int { return 2 * s.Taps }

// Convolve computes the valid-mode FIR response y[i] = Σ_j h[j]·x[i+j] for
// i ∈ [0, N-k], streaming x once and counting every word and flop. The taps
// are loaded once at the start (k reads).
func Convolve(spec ConvolveSpec, x, h []float64, c *opcount.Counter) ([]float64, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(x) != spec.N || len(h) != spec.Taps {
		return nil, fmt.Errorf("kernels: convolve operands must have lengths %d and %d", spec.N, spec.Taps)
	}
	k := spec.Taps
	c.Read(k) // tap vector, resident thereafter
	out := make([]float64, spec.N-k+1)
	delay := make([]float64, k) // circular delay line
	for i := 0; i < spec.N; i++ {
		delay[i%k] = x[i]
		c.Read(1)
		if i < k-1 {
			continue
		}
		var acc float64
		for j := 0; j < k; j++ {
			acc += h[j] * delay[(i-k+1+j)%k]
		}
		c.Ops(2 * k)
		out[i-k+1] = acc
		c.Write(1)
	}
	return out, nil
}

// CountConvolve returns the counts Convolve would record, in O(1) time.
func CountConvolve(spec ConvolveSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	n, k := uint64(spec.N), uint64(spec.Taps)
	outs := n - k + 1
	return opcount.Totals{
		Ops:    2 * k * outs,
		Reads:  k + n,
		Writes: outs,
	}, nil
}

// ConvolveRatioSweep measures the FIR ratio across *memory* sizes at fixed
// taps — the flat profile — or across tap counts at ample memory — the
// linear-in-k profile — depending on which slice the caller requests.
func ConvolveRatioSweep(ctx context.Context, n int, taps []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, taps, func(_ context.Context, k int, c *opcount.Counter) (int, error) {
		spec := ConvolveSpec{N: n, Taps: k}
		tot, err := CountConvolve(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, tot)
		return spec.Memory(), nil
	})
	return pts, err
}

// ConvolveRef is the O(N·k) reference used to validate Convolve.
func ConvolveRef(x, h []float64) []float64 {
	n, k := len(x), len(h)
	out := make([]float64, n-k+1)
	for i := range out {
		var acc float64
		for j := 0; j < k; j++ {
			acc += h[j] * x[i+j]
		}
		out[i] = acc
	}
	return out
}
