package kernels

import (
	"context"
	"fmt"
	"math/rand"

	"balarch/internal/opcount"
)

// GridSpec describes the §3.3 relaxation decomposition: an N^d grid of
// points partitioned into tiles of side s, one tile per PE; every iteration
// each PE updates its M = s^d points with a (2d+1)-point weighted-average
// stencil (4d+1 flops per point) and exchanges one-deep faces with its
// neighbors (2·Θ(s^(d-1)) words per iteration).
type GridSpec struct {
	// Dim is the grid dimensionality d ≥ 1.
	Dim int
	// Size is the grid side N (points per dimension).
	Size int
	// Tile is the tile side s ≤ N; the paper sets s = M^(1/d).
	Tile int
	// Iters is the number of relaxation iterations to perform.
	Iters int
}

// Validate checks the spec's invariants.
func (s GridSpec) Validate() error {
	switch {
	case s.Dim < 1:
		return fmt.Errorf("kernels: grid dim=%d must be ≥ 1", s.Dim)
	case s.Size < 3:
		return fmt.Errorf("kernels: grid size=%d must be ≥ 3 (needs interior points)", s.Size)
	case s.Tile < 1 || s.Tile > s.Size:
		return fmt.Errorf("kernels: grid tile=%d must be in [1, N=%d]", s.Tile, s.Size)
	case s.Iters < 1:
		return fmt.Errorf("kernels: grid iters=%d must be ≥ 1", s.Iters)
	}
	return nil
}

// TileVolume returns s^d, the number of grid points a PE stores.
func (s GridSpec) TileVolume() int {
	v := 1
	for d := 0; d < s.Dim; d++ {
		v *= s.Tile
	}
	return v
}

// Memory returns the local memory footprint in words: the resident tile plus
// one-deep halo faces in every direction.
func (s GridSpec) Memory() int {
	face := 1
	for d := 0; d < s.Dim-1; d++ {
		face *= s.Tile
	}
	return s.TileVolume() + 2*s.Dim*face
}

// stencilOps is the flop cost of one (2d+1)-point weighted-average update:
// 2d+1 multiplies and 2d adds.
func (s GridSpec) stencilOps() int { return 4*s.Dim + 1 }

// Grid is a d-dimensional scalar field with Dirichlet boundaries: boundary
// points keep their initial values; relaxation updates interior points only.
type Grid struct {
	Lat  *Lattice
	Data []float64
}

// NewGrid allocates a zeroed N^d grid.
func NewGrid(dim, size int) *Grid {
	sizes := make([]int, dim)
	for d := range sizes {
		sizes[d] = size
	}
	lat := NewLattice(sizes...)
	return &Grid{Lat: lat, Data: make([]float64, lat.Len())}
}

// NewGridRandom fills an N^d grid with uniform values in [0, 1).
func NewGridRandom(dim, size int, rng *rand.Rand) *Grid {
	g := NewGrid(dim, size)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	return g
}

// Clone deep-copies the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{Lat: g.Lat, Data: make([]float64, len(g.Data))}
	copy(out.Data, g.Data)
	return out
}

// MaxAbsDiff returns the largest point-wise absolute difference.
func (g *Grid) MaxAbsDiff(other *Grid) float64 {
	var worst float64
	for i, v := range g.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// relaxPoint computes the weighted average of the (2d+1)-point von Neumann
// stencil at flat index idx: weight 1/2 on the center, 1/(4d) on each
// neighbor. Both the tiled and the reference paths use this single function
// so their arithmetic is bit-identical.
func relaxPoint(src []float64, lat *Lattice, idx int) float64 {
	d := lat.Dim()
	w0, wn := 0.5, 1.0/(4.0*float64(d))
	sum := w0 * src[idx]
	for k := 0; k < d; k++ {
		st := lat.Stride(k)
		sum += wn*src[idx-st] + wn*src[idx+st]
	}
	return sum
}

// RelaxReference performs iters Jacobi sweeps on a copy of g with no tiling,
// the ground truth for validating the tiled kernel.
func RelaxReference(g *Grid, iters int) *Grid {
	cur, next := g.Clone(), g.Clone()
	coords := make([]int, g.Lat.Dim())
	for it := 0; it < iters; it++ {
		for idx := range cur.Data {
			cur.Lat.Coords(idx, coords)
			if cur.Lat.OnBoundary(coords) {
				next.Data[idx] = cur.Data[idx]
				continue
			}
			next.Data[idx] = relaxPoint(cur.Data, cur.Lat, idx)
		}
		cur, next = next, cur
	}
	return cur
}

// RelaxTiled performs the same Jacobi sweeps organized tile by tile per the
// §3.3 decomposition, counting the stencil flops and the per-iteration halo
// traffic each tile exchanges with its neighbors. The numeric result is
// bit-identical to RelaxReference because Jacobi updates read only the
// previous iterate.
func RelaxTiled(spec GridSpec, g *Grid, c *opcount.Counter) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if g.Lat.Dim() != spec.Dim || g.Lat.Sizes[0] != spec.Size {
		return nil, fmt.Errorf("kernels: grid shape %v does not match spec %d^%d",
			g.Lat.Sizes, spec.Size, spec.Dim)
	}
	cur, next := g.Clone(), g.Clone()
	d := spec.Dim
	coords := make([]int, d)
	tileLo := make([]int, d)

	for it := 0; it < spec.Iters; it++ {
		// Enumerate tiles by their low corner.
		forEachTile(spec, tileLo, func() {
			// Halo traffic: for each face with a neighboring tile
			// (i.e. the tile edge is not the grid edge), this PE
			// receives the neighbor's face and sends its own.
			for k := 0; k < d; k++ {
				area := tileFaceArea(spec, tileLo, k)
				if tileLo[k] > 0 {
					c.Read(area)
					c.Write(area)
				}
				if tileLo[k]+tileExtent(spec, tileLo[k]) < spec.Size {
					c.Read(area)
					c.Write(area)
				}
			}
			// Update every non-boundary point of the tile.
			var update func(dim, base int)
			update = func(dim, base int) {
				if dim == d {
					cur.Lat.Coords(base, coords)
					if cur.Lat.OnBoundary(coords) {
						return
					}
					next.Data[base] = relaxPoint(cur.Data, cur.Lat, base)
					c.Ops(spec.stencilOps())
					return
				}
				ext := tileExtent(spec, tileLo[dim])
				for o := 0; o < ext; o++ {
					update(dim+1, base+(tileLo[dim]+o)*cur.Lat.Stride(dim))
				}
			}
			update(0, 0)
		})
		// Boundary points carry over unchanged.
		for idx := range cur.Data {
			cur.Lat.Coords(idx, coords)
			if cur.Lat.OnBoundary(coords) {
				next.Data[idx] = cur.Data[idx]
			}
		}
		cur, next = next, cur
	}
	return cur, nil
}

// CountRelaxTiled walks the same tile structure as RelaxTiled without
// arithmetic, returning identical counts in O(iters · #tiles · d) time.
func CountRelaxTiled(spec GridSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	d := spec.Dim
	tileLo := make([]int, d)
	var t opcount.Totals
	var perIter opcount.Totals
	forEachTile(spec, tileLo, func() {
		for k := 0; k < d; k++ {
			area := uint64(tileFaceArea(spec, tileLo, k))
			if tileLo[k] > 0 {
				perIter.Reads += area
				perIter.Writes += area
			}
			if tileLo[k]+tileExtent(spec, tileLo[k]) < spec.Size {
				perIter.Reads += area
				perIter.Writes += area
			}
		}
		// Updatable points: tile points that are interior to the grid.
		interior := uint64(1)
		for k := 0; k < d; k++ {
			lo, ext := tileLo[k], tileExtent(spec, tileLo[k])
			hi := lo + ext
			ilo, ihi := lo, hi
			if ilo == 0 {
				ilo = 1
			}
			if ihi == spec.Size {
				ihi = spec.Size - 1
			}
			if ihi <= ilo {
				interior = 0
				break
			}
			interior *= uint64(ihi - ilo)
		}
		perIter.Ops += interior * uint64(spec.stencilOps())
	})
	t.Ops = perIter.Ops * uint64(spec.Iters)
	t.Reads = perIter.Reads * uint64(spec.Iters)
	t.Writes = perIter.Writes * uint64(spec.Iters)
	return t, nil
}

// tileExtent returns the extent of a tile starting at lo (ragged at the far
// edge).
func tileExtent(spec GridSpec, lo int) int { return min(spec.Tile, spec.Size-lo) }

// tileFaceArea returns the area of the tile's face normal to dimension k.
func tileFaceArea(spec GridSpec, tileLo []int, k int) int {
	area := 1
	for j := 0; j < spec.Dim; j++ {
		if j != k {
			area *= tileExtent(spec, tileLo[j])
		}
	}
	return area
}

// forEachTile invokes fn with tileLo set to each tile's low corner.
func forEachTile(spec GridSpec, tileLo []int, fn func()) {
	var rec func(dim int)
	rec = func(dim int) {
		if dim == spec.Dim {
			fn()
			return
		}
		for lo := 0; lo < spec.Size; lo += spec.Tile {
			tileLo[dim] = lo
			rec(dim + 1)
		}
	}
	rec(0)
}

// GridRatioSweep measures the relaxation ratio across tile sizes for the E4
// experiment. size should be ≫ the largest tile so interior tiles dominate.
// Points run in parallel via Sweep.
func GridRatioSweep(ctx context.Context, dim, size, iters int, tiles []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, tiles, func(_ context.Context, tile int, c *opcount.Counter) (int, error) {
		spec := GridSpec{Dim: dim, Size: size, Tile: tile, Iters: iters}
		t, err := CountRelaxTiled(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}
