package kernels

import (
	"context"
	"fmt"
	"math/bits"

	"balarch/internal/opcount"
)

// StrassenSpec describes a communication-avoiding Strassen multiplication —
// an extension in the §5 direction showing that *sub-cubic* algorithms obey
// a different balance law than the paper's α² for classical matmul.
//
// The recursion splits the N×N product into 7 half-size products connected
// by 18 streamed matrix additions until a subproblem's operands fit local
// memory (leaf side L, M = 3L²); leaves load their operands, multiply with
// in-memory Strassen, and store. The achievable ratio is
//
//	R(M) = Θ(M^(lg7/2 − 1)) = Θ(M^0.4037...)
//
// so rebalancing after an α increase needs M_new ≈ α^2.477·M_old — a
// *steeper* memory demand than classical matmul's α²: doing asymptotically
// less arithmetic per word leaves less slack for the balance condition.
type StrassenSpec struct {
	// N is the matrix dimension; a power of two.
	N int
	// Leaf is the subproblem side at which recursion stops; a power of
	// two in [1, N].
	Leaf int
}

// Validate checks the spec's invariants.
func (s StrassenSpec) Validate() error {
	if s.N < 1 || bits.OnesCount(uint(s.N)) != 1 {
		return fmt.Errorf("kernels: strassen N=%d must be a power of two ≥ 1", s.N)
	}
	if s.Leaf < 1 || bits.OnesCount(uint(s.Leaf)) != 1 || s.Leaf > s.N {
		return fmt.Errorf("kernels: strassen leaf=%d must be a power of two in [1, N=%d]", s.Leaf, s.N)
	}
	return nil
}

// Memory returns the local memory footprint in words: two operand blocks
// and the result block at the leaf.
func (s StrassenSpec) Memory() int { return 3 * s.Leaf * s.Leaf }

// CAStrassen multiplies a × b with the communication-avoiding Strassen
// scheme, counting every flop and every word that crosses the local-memory
// boundary: streamed additions read their two addends and write their sum;
// leaves read two blocks and write one. Quadrant addressing is free.
func CAStrassen(spec StrassenSpec, a, b *Dense, c *opcount.Counter) (*Dense, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if a.Rows != spec.N || a.Cols != spec.N || b.Rows != spec.N || b.Cols != spec.N {
		return nil, fmt.Errorf("kernels: strassen operands must be %d×%d", spec.N, spec.N)
	}
	return caStrassenRec(spec.Leaf, a, b, c), nil
}

func caStrassenRec(leaf int, a, b *Dense, c *opcount.Counter) *Dense {
	n := a.Rows
	if n <= leaf {
		c.Read(2 * n * n)
		out := strassenLocal(a, b, c)
		c.Write(n * n)
		return out
	}
	q := n / 2
	a11, a12, a21, a22 := quad(a, 0, 0), quad(a, 0, q), quad(a, q, 0), quad(a, q, q)
	b11, b12, b21, b22 := quad(b, 0, 0), quad(b, 0, q), quad(b, q, 0), quad(b, q, q)

	add := func(x, y *Dense, sub bool) *Dense { return streamedAdd(x, y, sub, c) }

	p1 := caStrassenRec(leaf, add(a11, a22, false), add(b11, b22, false), c)
	p2 := caStrassenRec(leaf, add(a21, a22, false), b11, c)
	p3 := caStrassenRec(leaf, a11, add(b12, b22, true), c)
	p4 := caStrassenRec(leaf, a22, add(b21, b11, true), c)
	p5 := caStrassenRec(leaf, add(a11, a12, false), b22, c)
	p6 := caStrassenRec(leaf, add(a21, a11, true), add(b11, b12, false), c)
	p7 := caStrassenRec(leaf, add(a12, a22, true), add(b21, b22, false), c)

	// C11 = P1 + P4 − P5 + P7; C12 = P3 + P5; C21 = P2 + P4;
	// C22 = P1 − P2 + P3 + P6 — eight streamed binary additions.
	c11 := add(add(add(p1, p4, false), p5, true), p7, false)
	c12 := add(p3, p5, false)
	c21 := add(p2, p4, false)
	c22 := add(add(add(p1, p2, true), p3, false), p6, false)

	out := NewDense(n, n)
	pasteQuad(out, c11, 0, 0)
	pasteQuad(out, c12, 0, q)
	pasteQuad(out, c21, q, 0)
	pasteQuad(out, c22, q, q)
	return out
}

// streamedAdd computes x ± y as an out-of-core stream: read both operands,
// one flop per element, write the result.
func streamedAdd(x, y *Dense, sub bool, c *opcount.Counter) *Dense {
	out := NewDense(x.Rows, x.Cols)
	for i, v := range x.Data {
		if sub {
			out.Data[i] = v - y.Data[i]
		} else {
			out.Data[i] = v + y.Data[i]
		}
	}
	c.Read(2 * len(x.Data))
	c.Ops(len(x.Data))
	c.Write(len(x.Data))
	return out
}

// quad copies the q×q quadrant at (r0, c0) — pure addressing, no counts.
func quad(m *Dense, r0, c0 int) *Dense {
	q := m.Rows / 2
	out := NewDense(q, q)
	for i := 0; i < q; i++ {
		copy(out.Data[i*q:(i+1)*q], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+q])
	}
	return out
}

func pasteQuad(dst, src *Dense, r0, c0 int) {
	q := src.Rows
	for i := 0; i < q; i++ {
		copy(dst.Data[(r0+i)*dst.Cols+c0:(r0+i)*dst.Cols+c0+q], src.Data[i*q:(i+1)*q])
	}
}

// strassenLocal multiplies entirely inside local memory with recursive
// Strassen down to 1×1, counting flops only (no I/O: everything is
// resident). Its flop count is S(n) = 7·S(n/2) + 18·(n/2)², S(1) = 1.
func strassenLocal(a, b *Dense, c *opcount.Counter) *Dense {
	n := a.Rows
	if n == 1 {
		c.Ops(1)
		out := NewDense(1, 1)
		out.Data[0] = a.Data[0] * b.Data[0]
		return out
	}
	q := n / 2
	a11, a12, a21, a22 := quad(a, 0, 0), quad(a, 0, q), quad(a, q, 0), quad(a, q, q)
	b11, b12, b21, b22 := quad(b, 0, 0), quad(b, 0, q), quad(b, q, 0), quad(b, q, q)

	add := func(x, y *Dense, sub bool) *Dense {
		out := NewDense(q, q)
		for i, v := range x.Data {
			if sub {
				out.Data[i] = v - y.Data[i]
			} else {
				out.Data[i] = v + y.Data[i]
			}
		}
		c.Ops(q * q)
		return out
	}

	p1 := strassenLocal(add(a11, a22, false), add(b11, b22, false), c)
	p2 := strassenLocal(add(a21, a22, false), b11, c)
	p3 := strassenLocal(a11, add(b12, b22, true), c)
	p4 := strassenLocal(a22, add(b21, b11, true), c)
	p5 := strassenLocal(add(a11, a12, false), b22, c)
	p6 := strassenLocal(add(a21, a11, true), add(b11, b12, false), c)
	p7 := strassenLocal(add(a12, a22, true), add(b21, b22, false), c)

	c11 := add(add(add(p1, p4, false), p5, true), p7, false)
	c12 := add(p3, p5, false)
	c21 := add(p2, p4, false)
	c22 := add(add(add(p1, p2, true), p3, false), p6, false)

	out := NewDense(n, n)
	pasteQuad(out, c11, 0, 0)
	pasteQuad(out, c12, 0, q)
	pasteQuad(out, c21, q, 0)
	pasteQuad(out, c22, q, q)
	return out
}

// strassenLocalOps returns S(n), the flop count of strassenLocal.
func strassenLocalOps(n int) uint64 {
	if n == 1 {
		return 1
	}
	q := uint64(n / 2)
	return 7*strassenLocalOps(n/2) + 18*q*q
}

// CountCAStrassen returns the counts CAStrassen would record, computed from
// the recursion's closed form in O(log(N/Leaf)) time: at level k there are
// 7^k nodes each performing 18 streamed additions of (n/2^(k+1))² elements,
// and 7^levels leaves each loading 2·Leaf² words, spending S(Leaf) flops,
// and storing Leaf² words.
func CountCAStrassen(spec StrassenSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	var t opcount.Totals
	nodes := uint64(1)
	size := spec.N
	for size > spec.Leaf {
		q := uint64(size / 2)
		adds := nodes * 18
		t.Reads += adds * 2 * q * q
		t.Ops += adds * q * q
		t.Writes += adds * q * q
		nodes *= 7
		size /= 2
	}
	leafSq := uint64(spec.Leaf) * uint64(spec.Leaf)
	t.Reads += nodes * 2 * leafSq
	t.Ops += nodes * strassenLocalOps(spec.Leaf)
	t.Writes += nodes * leafSq
	return t, nil
}

// StrassenRatioSweep measures the CA-Strassen ratio across leaf sizes at
// fixed N for the X4 experiment. Points run in parallel via Sweep.
func StrassenRatioSweep(ctx context.Context, n int, leaves []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, leaves, func(_ context.Context, l int, c *opcount.Counter) (int, error) {
		spec := StrassenSpec{N: n, Leaf: l}
		t, err := CountCAStrassen(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}
