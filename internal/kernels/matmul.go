package kernels

import (
	"context"
	"fmt"

	"balarch/internal/opcount"
)

// MatMulSpec describes the paper's §3.1 decomposition of an N×N matrix
// product: the result is computed in (N/b)² steps, each holding one b×b
// output block resident in local memory while streaming a b×N strip of the
// first operand and an N×b strip of the second past it, one column/row pair
// at a time.
type MatMulSpec struct {
	// N is the matrix dimension.
	N int
	// Block is the output block side b; the paper sets b = √M.
	Block int
}

// Validate checks the spec's invariants.
func (s MatMulSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("kernels: matmul N=%d must be positive", s.N)
	}
	if s.Block <= 0 || s.Block > s.N {
		return fmt.Errorf("kernels: matmul block=%d must be in [1, N=%d]", s.Block, s.N)
	}
	return nil
}

// Memory returns the local memory footprint of one step in words: the
// resident b×b output block plus the two length-b streaming buffers.
func (s MatMulSpec) Memory() int { return s.Block*s.Block + 2*s.Block }

// Steps returns the number of output blocks, counting ragged edges.
func (s MatMulSpec) Steps() int {
	nb := (s.N + s.Block - 1) / s.Block
	return nb * nb
}

// BlockedMatMul multiplies a × b with the §3.1 scheme, recording exact
// arithmetic and I/O word counts. a and b must be N×N per the spec. The
// returned product is bit-identical in shape to the reference product and is
// validated against MulRef in tests.
//
// Counting convention: loading one column segment of a and one row segment
// of b counts their word lengths as reads; a rank-1 update of an r×c block
// counts 2·r·c flops (multiply + add); storing the finished block counts r·c
// writes. The block itself stays resident, so it generates no traffic until
// the final store — this residency is exactly what buys the √M ratio.
func BlockedMatMul(spec MatMulSpec, a, b *Dense, c *opcount.Counter) (*Dense, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n, bs := spec.N, spec.Block
	if a.Rows != n || a.Cols != n || b.Rows != n || b.Cols != n {
		return nil, fmt.Errorf("kernels: matmul operands must be %d×%d", n, n)
	}
	out := NewDense(n, n)
	colBuf := make([]float64, bs) // streamed segment of a's column k
	rowBuf := make([]float64, bs) // streamed segment of b's row k
	block := make([]float64, bs*bs)

	for i0 := 0; i0 < n; i0 += bs {
		rows := min(bs, n-i0)
		for j0 := 0; j0 < n; j0 += bs {
			cols := min(bs, n-j0)
			for i := range block[:rows*cols] {
				block[i] = 0
			}
			for k := 0; k < n; k++ {
				// Stream one column segment of a and one row
				// segment of b into local memory.
				for i := 0; i < rows; i++ {
					colBuf[i] = a.At(i0+i, k)
				}
				c.Read(rows)
				for j := 0; j < cols; j++ {
					rowBuf[j] = b.At(k, j0+j)
				}
				c.Read(cols)
				// Rank-1 update of the resident block.
				for i := 0; i < rows; i++ {
					av := colBuf[i]
					for j := 0; j < cols; j++ {
						block[i*cols+j] += av * rowBuf[j]
					}
				}
				c.Ops(2 * rows * cols)
			}
			// Store the finished output block.
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					out.Set(i0+i, j0+j, block[i*cols+j])
				}
			}
			c.Write(rows * cols)
		}
	}
	return out, nil
}

// CountBlockedMatMul walks the same block structure as BlockedMatMul without
// doing arithmetic, returning identical counts in O((N/b)²) time, so the
// experiments can measure the N ≫ M regime the paper assumes.
func CountBlockedMatMul(spec MatMulSpec) (opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return opcount.Totals{}, err
	}
	n, bs := uint64(spec.N), spec.Block
	var t opcount.Totals
	for i0 := 0; i0 < spec.N; i0 += bs {
		rows := uint64(min(bs, spec.N-i0))
		for j0 := 0; j0 < spec.N; j0 += bs {
			cols := uint64(min(bs, spec.N-j0))
			t.Reads += n * (rows + cols)
			t.Ops += 2 * n * rows * cols
			t.Writes += rows * cols
		}
	}
	return t, nil
}

// NaiveMatMul is the textbook triple loop with no local-memory reuse: every
// operand element is re-read from outside the PE each time it is touched and
// every partial sum is written back. It realizes the worst-case Cio = Θ(N³)
// that motivates the paper's blocked scheme, and is the baseline for the
// cache-simulation experiment (E12).
func NaiveMatMul(a, b *Dense, c *opcount.Counter) (*Dense, error) {
	if a.Cols != b.Rows || a.Rows != a.Cols || b.Rows != b.Cols {
		return nil, fmt.Errorf("kernels: naive matmul requires square conformable operands")
	}
	n := a.Rows
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				sum += a.At(i, k) * b.At(k, j)
				c.Read(2) // a(i,k) and b(k,j) fetched from outside
				c.Ops(2)  // multiply + add
			}
			out.Set(i, j, sum)
			c.Write(1)
		}
	}
	return out, nil
}

// MatMulRatioSweep measures the achievable Ccomp/Cio of the blocked scheme
// across a range of block sizes at fixed N, returning (memory, ratio) pairs
// for the E2 experiment. N should be ≫ the largest block so the measured
// ratios sit in the paper's asymptotic regime. Points run in parallel via
// Sweep.
func MatMulRatioSweep(ctx context.Context, n int, blocks []int) ([]RatioPoint, error) {
	pts, _, err := Sweep(ctx, blocks, func(_ context.Context, bs int, c *opcount.Counter) (int, error) {
		spec := MatMulSpec{N: n, Block: bs}
		t, err := CountBlockedMatMul(spec)
		if err != nil {
			return 0, err
		}
		countPoint(c, t)
		return spec.Memory(), nil
	})
	return pts, err
}

// RatioPoint pairs a local memory size with the exact counts measured at
// that size; Ratio() is the achieved Ccomp/Cio.
type RatioPoint struct {
	Memory int
	Totals opcount.Totals
}

// Ratio returns the measured Ccomp/Cio at this point.
func (p RatioPoint) Ratio() float64 { return p.Totals.Ratio() }
