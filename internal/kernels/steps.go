package kernels

import (
	"math/bits"

	"balarch/internal/opcount"
)

// The paper's §3.2 derivation rests on a per-step claim: "The same ratio is
// maintained for all the steps." These functions expose the per-step and
// per-pass counts of the blocked decompositions so tests and experiments can
// check that claim directly, not just the whole-run aggregates.

// LUStepTotals returns the exact counts of each panel step of the §3.2
// blocked triangularization separately, in step order. The trailing steps
// shrink (the final step is just one diagonal tile), so the per-step ratio
// holds for all but the last few steps — exactly the lower-order effect the
// paper's Θ-notation absorbs.
func LUStepTotals(spec LUSpec) ([]opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n, bs := spec.N, spec.Block
	var steps []opcount.Totals
	for s0 := 0; s0 < n; s0 += bs {
		r := uint64(min(bs, n-s0))
		var t opcount.Totals
		t.Reads += r * r
		var diagOps uint64
		for m := uint64(1); m < r; m++ {
			diagOps += m + 2*m*m
		}
		t.Ops += diagOps
		t.Writes += r * r
		for i0 := s0 + int(r); i0 < n; i0 += bs {
			ri := uint64(min(bs, n-i0))
			t.Reads += ri * r
			t.Ops += ri * r * r
			t.Writes += ri * r
		}
		for j0 := s0 + int(r); j0 < n; j0 += bs {
			cj := uint64(min(bs, n-j0))
			t.Reads += r * cj
			t.Ops += cj * r * (r - 1)
			t.Writes += r * cj
		}
		for i0 := s0 + int(r); i0 < n; i0 += bs {
			ri := uint64(min(bs, n-i0))
			t.Reads += ri * r
			for j0 := s0 + int(r); j0 < n; j0 += bs {
				cj := uint64(min(bs, n-j0))
				t.Reads += r*cj + ri*cj
				t.Ops += 2 * ri * r * cj
				t.Writes += ri * cj
			}
		}
		steps = append(steps, t)
	}
	return steps, nil
}

// FFTPassTotals returns the exact counts of each pass of the §3.4 blocked
// FFT separately. Every full pass has the identical profile (read N, write
// N, (N/2)·log₂B butterflies); only a ragged final pass differs.
func FFTPassTotals(spec FFTSpec) ([]opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	totalStages := bits.TrailingZeros(uint(spec.N))
	perPass := bits.TrailingZeros(uint(spec.Block))
	n := uint64(spec.N)
	var passes []opcount.Totals
	for stageLo := 0; stageLo < totalStages; stageLo += perPass {
		lp := uint64(min(perPass, totalStages-stageLo))
		passes = append(passes, opcount.Totals{
			Reads:  n,
			Writes: n,
			Ops:    n / 2 * lp * butterflyOps,
		})
	}
	return passes, nil
}

// MatMulStepTotals returns the exact counts of each output-block step of the
// §3.1 decomposition. For block-divisible N all steps are identical — the
// strongest form of the per-step claim.
func MatMulStepTotals(spec MatMulSpec) ([]opcount.Totals, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n, bs := uint64(spec.N), spec.Block
	var steps []opcount.Totals
	for i0 := 0; i0 < spec.N; i0 += bs {
		rows := uint64(min(bs, spec.N-i0))
		for j0 := 0; j0 < spec.N; j0 += bs {
			cols := uint64(min(bs, spec.N-j0))
			steps = append(steps, opcount.Totals{
				Reads:  n * (rows + cols),
				Ops:    2 * n * rows * cols,
				Writes: rows * cols,
			})
		}
	}
	return steps, nil
}
