package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"balarch/internal/opcount"
)

// Substrate micro-benchmarks: the real kernels (numeric throughput) and the
// count-only walkers (harness overhead at paper-scale N).

func BenchmarkBlockedMatMulRun(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := NewDenseRandom(n, n, rng)
			y := NewDenseRandom(n, n, rng)
			spec := MatMulSpec{N: n, Block: 16}
			b.SetBytes(int64(8 * 2 * n * n * n)) // flop bytes proxy
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var c opcount.Counter
				if _, err := BlockedMatMul(spec, x, y, &c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCountBlockedMatMul(b *testing.B) {
	spec := MatMulSpec{N: 32768, Block: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CountBlockedMatMul(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockedLURun(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := DiagonallyDominant(96, rng)
	spec := LUSpec{N: 96, Block: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c opcount.Counter
		if _, err := BlockedLU(spec, a, &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelaxTiled2D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewGridRandom(2, 128, rng)
	spec := GridSpec{Dim: 2, Size: 128, Tile: 16, Iters: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c opcount.Counter
		if _, err := RelaxTiled(spec, g, &c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockedFFTRun(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			x := randomComplexBench(n, rng)
			spec := FFTSpec{N: n, Block: 64}
			buf := make([]complex128, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, x)
				var c opcount.Counter
				if err := BlockedFFT(spec, buf, &c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randomComplexBench(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	return x
}

func BenchmarkExternalSort(b *testing.B) {
	for _, m := range []int{256, 1024} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			n := m * m
			rng := rand.New(rand.NewSource(5))
			input := make([]int64, n)
			for i := range input {
				input[i] = rng.Int63()
			}
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var c opcount.Counter
				if _, err := ExternalSort(SortSpec{N: n, M: m}, input, &c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGivensQR(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := NewDenseRandom(64, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c opcount.Counter
		if _, _, err := GivensQR(a, &c); err != nil {
			b.Fatal(err)
		}
	}
}
