package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPolynomialLaw(t *testing.T) {
	sq := PolynomialLaw{Degree: 2}
	m, err := sq.MNew(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m != 16000 {
		t.Errorf("α=4: M_new = %v, want 16000", m)
	}
	cube := PolynomialLaw{Degree: 3}
	m, err = cube.MNew(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m != 800 {
		t.Errorf("d=3, α=2: M_new = %v, want 800", m)
	}
}

func TestExponentialLaw(t *testing.T) {
	m, err := ExponentialLaw{}.MNew(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1024*1024 {
		t.Errorf("α=2: M_new = %v, want 2^20", m)
	}
	m, err = ExponentialLaw{}.MNew(1, 512)
	if err != nil {
		t.Fatal(err)
	}
	if m != 512 {
		t.Errorf("α=1: M_new = %v, want 512 (unchanged)", m)
	}
}

func TestImpossibleLaw(t *testing.T) {
	if _, err := (ImpossibleLaw{}).MNew(2, 100); !errors.Is(err, ErrNotRebalanceable) {
		t.Errorf("α=2: err = %v, want ErrNotRebalanceable", err)
	}
	m, err := ImpossibleLaw{}.MNew(1, 100)
	if err != nil || m != 100 {
		t.Errorf("α=1: (%v, %v), want (100, nil)", m, err)
	}
}

func TestLawArgumentValidation(t *testing.T) {
	laws := []GrowthLaw{PolynomialLaw{Degree: 2}, ExponentialLaw{}, ImpossibleLaw{}}
	for _, l := range laws {
		if _, err := l.MNew(0.5, 100); err == nil {
			t.Errorf("%s: α<1 accepted", l.Describe())
		}
		if _, err := l.MNew(2, -1); err == nil {
			t.Errorf("%s: negative M accepted", l.Describe())
		}
		if _, err := l.MNew(math.Inf(1), 100); err == nil {
			t.Errorf("%s: infinite α accepted", l.Describe())
		}
	}
}

func TestLawDescriptions(t *testing.T) {
	if got := (PolynomialLaw{Degree: 2}).Describe(); got != "M_new = α²·M_old" {
		t.Errorf("square law description = %q", got)
	}
	if got := (PolynomialLaw{Degree: 3}).Describe(); got != "M_new = α^3·M_old" {
		t.Errorf("cube law description = %q", got)
	}
	if got := (ExponentialLaw{}).Describe(); got != "M_new = M_old^α" {
		t.Errorf("exponential law description = %q", got)
	}
}

// Property: growth laws are monotone in α — more intensity never needs less
// memory.
func TestLawsMonotoneProperty(t *testing.T) {
	laws := []GrowthLaw{PolynomialLaw{Degree: 2}, PolynomialLaw{Degree: 4}, ExponentialLaw{}}
	f := func(a16 uint16, m16 uint16) bool {
		alpha := 1 + float64(a16%1000)/100 // [1, 11)
		mOld := 2 + float64(m16%10000)     // [2, 10002)
		for _, l := range laws {
			m1, err1 := l.MNew(alpha, mOld)
			m2, err2 := l.MNew(alpha+0.5, mOld)
			if err1 != nil || err2 != nil {
				return false
			}
			if m2 < m1 {
				return false
			}
			if m1 < mOld { // rebalancing never shrinks memory
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
