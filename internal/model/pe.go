// Package model implements the information model of Kung (1985): a
// processing element characterized by computation bandwidth C, I/O bandwidth
// IO, and local memory size M (paper §2, Fig. 1), the balance condition
// Ccomp/C = Cio/IO, the per-computation achievable ratio functions
// R(M) = Ccomp/Cio, the memory growth laws of §3, and the numeric rebalance
// solver that answers the paper's central question: when C/IO rises by a
// factor α, how large must the local memory become?
package model

import (
	"errors"
	"fmt"
	"math"
)

// PE is a processing element in the paper's information model.
type PE struct {
	// C is the computation bandwidth in operations per second.
	C float64
	// IO is the I/O bandwidth in words per second. One I/O operation
	// transfers one word to or from the PE.
	IO float64
	// M is the size of the local memory in words.
	M float64
}

// Validate reports whether the PE's parameters are physically meaningful.
func (pe PE) Validate() error {
	switch {
	case !(pe.C > 0) || math.IsInf(pe.C, 0):
		return fmt.Errorf("model: computation bandwidth C=%v must be positive and finite", pe.C)
	case !(pe.IO > 0) || math.IsInf(pe.IO, 0):
		return fmt.Errorf("model: I/O bandwidth IO=%v must be positive and finite", pe.IO)
	case !(pe.M > 0) || math.IsInf(pe.M, 0):
		return fmt.Errorf("model: local memory M=%v must be positive and finite", pe.M)
	case math.IsInf(pe.C/pe.IO, 0):
		// Finite C over denormal IO can still overflow the intensity,
		// and an infinite intensity poisons every downstream figure.
		return fmt.Errorf("model: intensity C/IO = %v/%v overflows", pe.C, pe.IO)
	}
	return nil
}

// Intensity returns C/IO, the machine-side ratio that the computation-side
// ratio Ccomp/Cio must match for balance (paper eq. (1)).
func (pe PE) Intensity() float64 { return pe.C / pe.IO }

// ComputeTime returns the time to execute ccomp operations.
func (pe PE) ComputeTime(ccomp float64) float64 { return ccomp / pe.C }

// IOTime returns the time to transfer cio words.
func (pe PE) IOTime(cio float64) float64 { return cio / pe.IO }

// String renders the PE in the paper's (C, IO, M) notation.
func (pe PE) String() string {
	return fmt.Sprintf("PE{C=%s ops/s, IO=%s words/s, M=%s words}",
		siNumber(pe.C), siNumber(pe.IO), siNumber(pe.M))
}

// BalanceState classifies how a PE relates to a computation's demands.
type BalanceState int

const (
	// Balanced: computing time equals I/O time (within tolerance).
	Balanced BalanceState = iota
	// IOBound: the PE waits for I/O (I/O time exceeds computing time).
	IOBound
	// ComputeBound: the PE's compute unit is the limiter; its I/O channel
	// is underused. (The paper calls the overall class of such workloads
	// "computation bounded".)
	ComputeBound
)

// String names the balance state.
func (s BalanceState) String() string {
	switch s {
	case Balanced:
		return "balanced"
	case IOBound:
		return "I/O bound (PE waits for I/O)"
	case ComputeBound:
		return "compute bound (I/O channel underused)"
	default:
		return fmt.Sprintf("BalanceState(%d)", int(s))
	}
}

// BalanceTolerance is the default relative tolerance used when classifying a
// PE as balanced: times within 1% are considered equal, absorbing the
// lower-order terms the paper's Θ-notation hides.
const BalanceTolerance = 0.01

// Classify compares the computing time of ccomp operations against the I/O
// time of cio words on this PE and classifies the result. tol is the relative
// tolerance; pass BalanceTolerance for the default.
func (pe PE) Classify(ccomp, cio, tol float64) BalanceState {
	tc := pe.ComputeTime(ccomp)
	tio := pe.IOTime(cio)
	ref := math.Max(tc, tio)
	if ref == 0 || math.Abs(tc-tio) <= tol*ref {
		return Balanced
	}
	if tio > tc {
		return IOBound
	}
	return ComputeBound
}

// Utilization returns the fraction of total busy time the compute unit is
// actually computing when compute and I/O do not overlap: Tcomp/(Tcomp+Tio).
// A balanced PE scores 0.5 under this serial model.
func (pe PE) Utilization(ccomp, cio float64) float64 {
	tc := pe.ComputeTime(ccomp)
	tio := pe.IOTime(cio)
	if tc+tio == 0 {
		return 0
	}
	return tc / (tc + tio)
}

// OverlappedUtilization returns the compute-unit utilization when compute
// and I/O fully overlap (double buffering): Tcomp/max(Tcomp, Tio). A
// balanced PE scores 1 under this model, which is the design point the
// paper's balance condition targets.
func (pe PE) OverlappedUtilization(ccomp, cio float64) float64 {
	tc := pe.ComputeTime(ccomp)
	tio := pe.IOTime(cio)
	m := math.Max(tc, tio)
	if m == 0 {
		return 0
	}
	return tc / m
}

// ErrNotRebalanceable is returned by rebalance solvers for I/O-bounded
// computations: per paper §3.6, no enlargement of local memory can restore
// balance once C/IO has grown, because the ratio Ccomp/Cio is bounded by a
// constant independent of M.
var ErrNotRebalanceable = errors.New("model: computation is I/O bounded; no local memory size restores balance (paper §3.6)")

// siNumber formats a float with an SI suffix for readable PE descriptions.
func siNumber(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.3gT", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gK", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
