package model

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// threeLevel is a plausible register→cache→DRAM-ish machine used across the
// tests: 1 GOPS compute, 4 Gwords/s into a 1K inner store, 1 Gword/s into a
// 256K middle level, 50 Mwords/s into a 64M outer level.
func threeLevel() Hierarchy {
	return Hierarchy{C: 1e9, Levels: []Level{
		{Name: "sram", BW: 4e9, M: 1024},
		{Name: "dram", BW: 1e9, M: 256 * 1024},
		{Name: "disk", BW: 50e6, M: 64 << 20},
	}}
}

func TestHierarchyValidate(t *testing.T) {
	if err := threeLevel().Validate(); err != nil {
		t.Fatalf("valid hierarchy rejected: %v", err)
	}
	cases := map[string]Hierarchy{
		"no levels":    {C: 1e9},
		"zero C":       {C: 0, Levels: []Level{{BW: 1, M: 1}}},
		"inf C":        {C: math.Inf(1), Levels: []Level{{BW: 1, M: 1}}},
		"zero BW":      {C: 1, Levels: []Level{{BW: 0, M: 1}}},
		"negative M":   {C: 1, Levels: []Level{{BW: 1, M: -4}}},
		"NaN capacity": {C: 1, Levels: []Level{{BW: 1, M: math.NaN()}}},
	}
	for name, h := range cases {
		if err := h.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHierarchyValidateNonMonotone(t *testing.T) {
	h := threeLevel()
	h.Levels[2].BW = 2e9 // disk channel faster than dram: mis-ordered
	err := h.Validate()
	if !errors.Is(err, ErrNonMonotoneHierarchy) {
		t.Fatalf("err = %v, want ErrNonMonotoneHierarchy", err)
	}
	// Equal bandwidths across adjacent boundaries are allowed.
	h.Levels[2].BW = h.Levels[1].BW
	if err := h.Validate(); err != nil {
		t.Fatalf("equal adjacent bandwidths rejected: %v", err)
	}
}

func TestHierarchyAccessors(t *testing.T) {
	h := threeLevel()
	if got := h.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	if got := h.CapacityWithin(2); got != 1024+256*1024 {
		t.Errorf("CapacityWithin(2) = %v", got)
	}
	if got := h.TotalCapacity(); got != 1024+256*1024+float64(64<<20) {
		t.Errorf("TotalCapacity = %v", got)
	}
	if got := h.BoundaryIntensity(3); got != 1e9/50e6 {
		t.Errorf("BoundaryIntensity(3) = %v, want 20", got)
	}
	if s := h.String(); !strings.Contains(s, "C=1G ops/s") {
		t.Errorf("String = %q", s)
	}
	pe := PE{C: 10e6, IO: 20e6, M: 65536}
	if flat, ok := FromPE(pe).Flat(); !ok || flat != pe {
		t.Errorf("FromPE→Flat = %+v, %v", flat, ok)
	}
	if _, ok := threeLevel().Flat(); ok {
		t.Error("three-level hierarchy claimed to be flat")
	}
}

// TestAnalyzeHierarchyPerBoundary checks the headline capability: a machine
// that is balanced at one boundary and I/O bound at another, with the
// binding boundary picking the overall verdict.
func TestAnalyzeHierarchyPerBoundary(t *testing.T) {
	// Matrix multiplication, R(M) = √M. Build the boundary states directly:
	// boundary 1: W=1024, R=32, intensity C/BW=0.25 → compute bound.
	// boundary 2: W≈257K, R≈507, intensity 1 → compute bound.
	// boundary 3: W≈64M, R≈8207, intensity 20 → compute bound. Make the
	// disk channel slow enough to bind: intensity must exceed R.
	h := threeLevel()
	h.Levels[2].BW = 100e3 // intensity 10000 > R(total)≈8207: disk I/O bound
	a, err := AnalyzeHierarchy(h, MatrixMultiplication(), 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Boundaries) != 3 {
		t.Fatalf("got %d boundaries", len(a.Boundaries))
	}
	wantStates := []BalanceState{ComputeBound, ComputeBound, IOBound}
	for i, b := range a.Boundaries {
		if b.State != wantStates[i] {
			t.Errorf("boundary %d: state %v, want %v", b.Boundary, b.State, wantStates[i])
		}
	}
	if a.Binding != 3 || a.State != IOBound {
		t.Errorf("binding = %d state %v, want boundary 3 I/O bound", a.Binding, a.State)
	}
	// The binding boundary's balanced capacity is the flat answer for the
	// equivalent PE (intensity 10⁴ → M = 10⁸ for √M).
	bb := a.BindingBoundary()
	if !bb.Rebalanceable || math.Abs(bb.BalancedMemory-1e8)/1e8 > 1e-6 {
		t.Errorf("binding BalancedMemory = %v, want 1e8", bb.BalancedMemory)
	}
}

// TestAnalyzeHierarchyOneLevelMatchesFlat pins the exact special case on a
// hand-picked PE (the property test quantifies over the catalog).
func TestAnalyzeHierarchyOneLevelMatchesFlat(t *testing.T) {
	pe := PE{C: 50e6, IO: 1e6, M: 4096}
	for _, comp := range Catalog() {
		flat, err := Analyze(pe, comp, 1e18)
		if err != nil {
			t.Fatal(err)
		}
		ha, err := AnalyzeHierarchy(FromPE(pe), comp, 1e18)
		if err != nil {
			t.Fatal(err)
		}
		b := ha.Boundaries[0]
		if ha.Binding != 1 || ha.State != flat.State ||
			b.Intensity != flat.Intensity ||
			b.AchievableRatio != flat.AchievableRatio ||
			b.BalancedMemory != flat.BalancedMemory ||
			b.Rebalanceable != flat.Rebalanceable {
			t.Errorf("%s: one-level %+v != flat %+v", comp.Name, b, flat)
		}
	}
}

func TestAnalyzeHierarchyRejectsInvalid(t *testing.T) {
	if _, err := AnalyzeHierarchy(Hierarchy{}, FFT(), 1e18); err == nil {
		t.Error("empty hierarchy accepted")
	}
	h := threeLevel()
	h.Levels[0].BW = 1 // inner slower than outer: non-monotone
	if _, err := AnalyzeHierarchy(h, FFT(), 1e18); !errors.Is(err, ErrNonMonotoneHierarchy) {
		t.Errorf("err = %v, want ErrNonMonotoneHierarchy", err)
	}
}

// TestRebalanceHierarchyBill checks the per-level bill on a concrete case
// where only the outer boundary needs new capacity.
func TestRebalanceHierarchyBill(t *testing.T) {
	// Sorting, R(M) = log₂M. Boundary intensities ×α must be reachable.
	h := Hierarchy{C: 8e6, Levels: []Level{
		{Name: "ram", BW: 1e6, M: 1 << 10},
		{Name: "disk", BW: 500e3, M: 1 << 20},
	}}
	// Intensities: 8 and 16. α=1.5 → 12 and 24. Required cumulative:
	// 2^12 and 2^24.
	r, err := RebalanceHierarchy(h, Sorting(), 1.5, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rebalanceable || r.Binding != 2 {
		t.Fatalf("rebalanceable=%v binding=%d, want true/2", r.Rebalanceable, r.Binding)
	}
	if got := r.Boundaries[0].RequiredWithin; math.Abs(got-4096)/4096 > 1e-6 {
		t.Errorf("boundary 1 requires %v, want 4096", got)
	}
	if got := r.Boundaries[1].RequiredWithin; math.Abs(got-float64(1<<24))/float64(1<<24) > 1e-6 {
		t.Errorf("boundary 2 requires %v, want 2^24", got)
	}
	// Level 1 must grow to 4096; level 2 covers the rest of 2^24.
	if b := r.Bill[0]; math.Abs(b.MNew-4096)/4096 > 1e-6 || b.Delta != b.MNew-1024 {
		t.Errorf("level 1 bill %+v, want MNew 4096", b)
	}
	if b := r.Bill[1]; math.Abs(b.MNew-(float64(1<<24)-4096))/float64(1<<24) > 1e-6 {
		t.Errorf("level 2 bill %+v, want MNew 2^24−4096", b)
	}
	if math.Abs(r.TotalMemory-float64(1<<24))/float64(1<<24) > 1e-6 {
		t.Errorf("TotalMemory = %v, want 2^24", r.TotalMemory)
	}
	// Re-analyzing at the billed capacities with the faster compute unit
	// must report no boundary I/O bound.
	h2 := Hierarchy{C: 1.5 * h.C, Levels: []Level{
		{Name: "ram", BW: 1e6, M: r.Bill[0].MNew},
		{Name: "disk", BW: 500e3, M: r.Bill[1].MNew},
	}}
	a, err := AnalyzeHierarchy(h2, Sorting(), 1e18)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range a.Boundaries {
		if b.State == IOBound {
			t.Errorf("boundary %d still I/O bound after paying the bill", b.Boundary)
		}
	}
}

// TestRebalanceHierarchyNoShrink: a level already larger than its boundary
// requires keeps its capacity — the bill never shrinks a memory.
func TestRebalanceHierarchyNoShrink(t *testing.T) {
	h := Hierarchy{C: 4e6, Levels: []Level{
		{BW: 1e6, M: 1 << 20}, // vastly over-provisioned for intensity 4
		{BW: 500e3, M: 1 << 10},
	}}
	r, err := RebalanceHierarchy(h, Sorting(), 1.25, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bill[0].MNew != float64(1<<20) || r.Bill[0].Delta != 0 {
		t.Errorf("over-provisioned level was resized: %+v", r.Bill[0])
	}
	// The inner level's 2^20 words already exceed boundary 2's 2^10
	// requirement, so the outer level only keeps what it has.
	if r.Bill[1].MNew != float64(1<<10) || r.Bill[1].Delta != 0 {
		t.Errorf("outer level billed %+v, want unchanged", r.Bill[1])
	}
	if r.TotalDelta != 0 {
		t.Errorf("TotalDelta = %v, want 0", r.TotalDelta)
	}
}

func TestRebalanceHierarchyIOBounded(t *testing.T) {
	r, err := RebalanceHierarchy(threeLevel(), MatrixVector(), 2, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rebalanceable || r.Bill != nil || r.TotalMemory != 0 {
		t.Errorf("Θ(1) computation rebalanced: %+v", r)
	}
}

func TestRebalanceHierarchyRejectsBadAlpha(t *testing.T) {
	if _, err := RebalanceHierarchy(threeLevel(), FFT(), 0.5, 1e18); err == nil {
		t.Error("α<1 accepted")
	}
	h := threeLevel()
	h.C = -1
	if _, err := RebalanceHierarchy(h, FFT(), 2, 1e18); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}
