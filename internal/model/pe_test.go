package model

import (
	"math"
	"strings"
	"testing"
)

func TestPEValidate(t *testing.T) {
	good := PE{C: 1e6, IO: 1e5, M: 1024}
	if err := good.Validate(); err != nil {
		t.Errorf("valid PE rejected: %v", err)
	}
	bad := []PE{
		{C: 0, IO: 1, M: 1},
		{C: 1, IO: 0, M: 1},
		{C: 1, IO: 1, M: 0},
		{C: -5, IO: 1, M: 1},
		{C: math.Inf(1), IO: 1, M: 1},
		{C: 1, IO: math.NaN(), M: 1},
	}
	for i, pe := range bad {
		if err := pe.Validate(); err == nil {
			t.Errorf("case %d: invalid PE %+v accepted", i, pe)
		}
	}
}

func TestIntensityAndTimes(t *testing.T) {
	pe := PE{C: 100, IO: 25, M: 64}
	if got := pe.Intensity(); got != 4 {
		t.Errorf("Intensity = %v, want 4", got)
	}
	if got := pe.ComputeTime(500); got != 5 {
		t.Errorf("ComputeTime = %v, want 5", got)
	}
	if got := pe.IOTime(50); got != 2 {
		t.Errorf("IOTime = %v, want 2", got)
	}
}

func TestClassify(t *testing.T) {
	pe := PE{C: 100, IO: 10, M: 64}
	// Balanced: 1000 ops in 10s vs 100 words in 10s.
	if got := pe.Classify(1000, 100, BalanceTolerance); got != Balanced {
		t.Errorf("balanced case = %v", got)
	}
	// I/O bound: I/O takes longer.
	if got := pe.Classify(1000, 500, BalanceTolerance); got != IOBound {
		t.Errorf("io-bound case = %v", got)
	}
	// Compute bound.
	if got := pe.Classify(5000, 100, BalanceTolerance); got != ComputeBound {
		t.Errorf("compute-bound case = %v", got)
	}
	// Zero work counts as balanced.
	if got := pe.Classify(0, 0, BalanceTolerance); got != Balanced {
		t.Errorf("zero-work case = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	pe := PE{C: 100, IO: 10, M: 64}
	// Balanced workload: serial utilization 0.5, overlapped 1.0.
	if got := pe.Utilization(1000, 100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("serial utilization = %v, want 0.5", got)
	}
	if got := pe.OverlappedUtilization(1000, 100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("overlapped utilization = %v, want 1", got)
	}
	// I/O bound at 2:1: overlapped utilization 0.5.
	if got := pe.OverlappedUtilization(1000, 200); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("overlapped utilization = %v, want 0.5", got)
	}
	if got := pe.Utilization(0, 0); got != 0 {
		t.Errorf("zero-work utilization = %v, want 0", got)
	}
	if got := pe.OverlappedUtilization(0, 0); got != 0 {
		t.Errorf("zero-work overlapped utilization = %v, want 0", got)
	}
}

func TestBalanceStateString(t *testing.T) {
	for _, s := range []BalanceState{Balanced, IOBound, ComputeBound, BalanceState(99)} {
		if s.String() == "" {
			t.Errorf("empty string for state %d", int(s))
		}
	}
}

func TestPEString(t *testing.T) {
	s := Warp().String()
	for _, want := range []string{"10M", "20M", "65.5K"} {
		if !strings.Contains(s, want) {
			t.Errorf("Warp().String() = %q, missing %q", s, want)
		}
	}
}
