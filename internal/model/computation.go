package model

import (
	"fmt"
	"math"
)

// RatioFunc gives the best achievable Ccomp/Cio for a computation when the
// PE has m words of local memory, in the paper's asymptotic regime N ≫ M.
// Every computation in §3 is characterized by such a function: √M for matrix
// computations, M^(1/d) for d-dimensional grids, log₂M for FFT and sorting,
// and a constant for I/O-bounded computations.
type RatioFunc func(m float64) float64

// Computation is one row of the paper's §3 analysis: a named computational
// task with its achievable compute-to-I/O ratio and its memory growth law.
type Computation struct {
	// Name is the human-readable task name.
	Name string
	// Section is the paper locus deriving this row, e.g. "§3.1".
	Section string
	// IOBounded marks computations that cannot be rebalanced by memory
	// alone (paper §3.6).
	IOBounded bool
	// Law is the closed-form memory growth law from the paper.
	Law GrowthLaw
	// Ratio is the asymptotic achievable Ccomp/Cio as a function of
	// local memory size, matching the decomposition scheme the paper
	// analyzes (leading term, constants included).
	Ratio RatioFunc
	// MinMemory is the smallest local memory (words) for which the
	// decomposition scheme is meaningful (e.g. a 2×2 matrix block).
	MinMemory float64
}

// String identifies the computation.
func (c Computation) String() string {
	return fmt.Sprintf("%s (%s): %s", c.Name, c.Section, c.Law.Describe())
}

// BalancedIntensity returns the machine intensity C/IO at which a PE with m
// words of local memory is balanced for this computation.
func (c Computation) BalancedIntensity(m float64) float64 { return c.Ratio(m) }

// RequiredMemory returns the smallest local memory size m (words) such that
// the computation's achievable ratio meets or exceeds the machine intensity
// x = C/IO, i.e. the memory a PE needs to be balanced (not I/O bound) for
// this computation. It returns ErrNotRebalanceable when the intensity is
// unreachable for any memory size below maxM.
//
// The search assumes Ratio is nondecreasing in m, which holds for every
// computation in the paper, and uses exponential bracketing followed by
// bisection, so it works for √M, M^(1/d), and log₂M shapes alike.
func (c Computation) RequiredMemory(x, maxM float64) (float64, error) {
	if !(x > 0) {
		return 0, fmt.Errorf("model: intensity %v must be positive", x)
	}
	lo := c.MinMemory
	if lo <= 0 {
		lo = 1
	}
	if c.Ratio(lo) >= x {
		return lo, nil
	}
	// Bracket: grow hi until the ratio reaches x or we exceed maxM.
	hi := lo
	for c.Ratio(hi) < x {
		hi *= 2
		if hi > maxM {
			if c.Ratio(maxM) < x {
				return 0, fmt.Errorf("%w: intensity %.4g unreachable below M=%.4g for %s",
					ErrNotRebalanceable, x, maxM, c.Name)
			}
			hi = maxM
			break
		}
	}
	// Bisect for the smallest m with Ratio(m) ≥ x.
	for i := 0; i < 200 && hi-lo > math.Max(1e-9, 1e-12*hi); i++ {
		mid := lo + (hi-lo)/2
		if c.Ratio(mid) >= x {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// Rebalance answers the paper's central question numerically: given a PE
// balanced at memory mOld, and an increase of C/IO by factor alpha, return
// the minimum memory restoring balance. It inverts the Ratio function
// rather than using the closed-form Law, so tests can check the two agree.
func (c Computation) Rebalance(alpha, mOld, maxM float64) (float64, error) {
	if err := checkRebalanceArgs(alpha, mOld); err != nil {
		return 0, err
	}
	target := alpha * c.Ratio(mOld)
	return c.RequiredMemory(target, maxM)
}

// RebalanceClosedForm answers the same question via the paper's closed-form
// growth law.
func (c Computation) RebalanceClosedForm(alpha, mOld float64) (float64, error) {
	return c.Law.MNew(alpha, mOld)
}

// Analysis bundles the balance diagnosis of one PE running one computation.
type Analysis struct {
	Computation string
	PE          PE
	// Intensity is the machine's C/IO.
	Intensity float64
	// AchievableRatio is R(M) at the PE's memory size.
	AchievableRatio float64
	// State classifies the PE: balanced, I/O bound, or compute bound.
	State BalanceState
	// BalancedMemory is the minimum memory at which this PE would be
	// balanced for the computation; 0 if unreachable (I/O bounded).
	BalancedMemory float64
	// Rebalanceable is false for I/O-bounded computations whose required
	// intensity exceeds the achievable ratio at any memory size.
	Rebalanceable bool
}

// Analyze diagnoses a PE against a computation: compares the machine
// intensity C/IO with the achievable ratio R(M) and computes the memory that
// would restore balance. maxM bounds the numeric search.
func Analyze(pe PE, c Computation, maxM float64) (Analysis, error) {
	if err := pe.Validate(); err != nil {
		return Analysis{}, err
	}
	a := Analysis{
		Computation:     c.Name,
		PE:              pe,
		Intensity:       pe.Intensity(),
		AchievableRatio: c.Ratio(pe.M),
	}
	// With memory M the computation sustains R(M) ops per word of I/O, so
	// compute time : I/O time = intensity : R(M).
	switch {
	case nearlyEqual(a.Intensity, a.AchievableRatio, BalanceTolerance):
		a.State = Balanced
	case a.Intensity > a.AchievableRatio:
		// The machine computes faster than the decomposition can feed it.
		a.State = IOBound
	default:
		a.State = ComputeBound
	}
	m, err := c.RequiredMemory(a.Intensity, maxM)
	if err == nil {
		a.BalancedMemory = m
		a.Rebalanceable = true
	} else if !isNotRebalanceable(err) {
		return Analysis{}, err
	}
	return a, nil
}

func nearlyEqual(a, b, tol float64) bool {
	ref := math.Max(math.Abs(a), math.Abs(b))
	return ref == 0 || math.Abs(a-b) <= tol*ref
}

func isNotRebalanceable(err error) bool {
	for err != nil {
		if err == ErrNotRebalanceable {
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
