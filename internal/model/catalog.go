package model

import (
	"fmt"
	"math"
)

// The catalog below encodes every computation analyzed in paper §3 with the
// leading-term constants of the decomposition schemes implemented in
// internal/kernels, so that measured counter ratios converge to these
// functions as N/M → ∞ (verified by the kernel and experiment tests).

// MatrixMultiplication is §3.1: N×N matrix product computed in (N/√M)²
// steps, each step a √M×N by N×√M product held against a resident √M×√M
// output block. Per step: Ccomp = 2NM flops, Cio = 2N√M + M words, so
// R(M) → √M as N ≫ M, and M_new = α²·M_old.
func MatrixMultiplication() Computation {
	return Computation{
		Name:      "matrix multiplication",
		Section:   "§3.1",
		Law:       PolynomialLaw{Degree: 2},
		Ratio:     func(m float64) float64 { return math.Sqrt(m) },
		MinMemory: 4, // a 2×2 output block
	}
}

// MatrixTriangularization is §3.2: QA = U by blocked Gaussian elimination or
// Givens rotations, solved in N/√M panel steps; each step annihilates √M
// columns with Ccomp = Θ(N²√M) flops against Cio = Θ(N²) words of trailing
// matrix traffic, so R(M) → √M and M_new = α²·M_old.
func MatrixTriangularization() Computation {
	return Computation{
		Name:      "matrix triangularization",
		Section:   "§3.2",
		Law:       PolynomialLaw{Degree: 2},
		Ratio:     func(m float64) float64 { return math.Sqrt(m) },
		MinMemory: 4,
	}
}

// Grid is §3.3: relaxation on a d-dimensional grid partitioned into tiles of
// M points (side s = M^(1/d)). Per iteration per tile the stencil costs
// Θ(M) flops while the halo exchange moves Θ(M^((d-1)/d)) words, so
// R(M) = Θ(M^(1/d)) and M_new = α^d·M_old. The constant uses a (2d+1)-point
// von Neumann stencil: 4d+1 flops per point, 4d·s^(d-1) halo words per
// iteration (send and receive one-deep faces).
func Grid(d int) Computation {
	if d < 1 {
		panic(fmt.Sprintf("model: grid dimension %d must be ≥ 1", d))
	}
	df := float64(d)
	return Computation{
		Name:      fmt.Sprintf("%d-D grid relaxation", d),
		Section:   "§3.3",
		Law:       PolynomialLaw{Degree: df},
		Ratio:     func(m float64) float64 { return (4*df + 1) / (4 * df) * math.Pow(m, 1/df) },
		MinMemory: math.Pow(3, df), // a 3^d tile: one interior point plus halo
	}
}

// FFT is §3.4: an N-point radix-2 FFT decomposed into blocks of M points.
// Each block performs (M/2)·log₂M butterflies entirely in local memory and
// is read and written once (Cio = 2M), so with 10 flops per butterfly
// (matching internal/kernels) R(M) = 2.5·log₂M = Θ(log₂M) and
// M_new = M_old^α.
func FFT() Computation {
	return Computation{
		Name:      "fast Fourier transform",
		Section:   "§3.4",
		Law:       ExponentialLaw{},
		Ratio:     func(m float64) float64 { return 5.0 / 2.0 * math.Log2(m) },
		MinMemory: 2, // one butterfly
	}
}

// Sorting is §3.5: comparison sorting in two phases — phase 1 sorts N/M runs
// of M keys in memory (≈2M·log₂M heapsort comparisons per 2M words moved),
// phase 2 merges with an M-way heap (≈2·log₂M comparisons per word of I/O),
// so both phases achieve R(M) ≈ log₂M = Θ(log₂M) and M_new = M_old^α.
func Sorting() Computation {
	return Computation{
		Name:      "sorting",
		Section:   "§3.5",
		Law:       ExponentialLaw{},
		Ratio:     func(m float64) float64 { return math.Log2(m) },
		MinMemory: 2, // one comparison
	}
}

// MatrixVector is §3.6: y = Ax reads every element of A exactly once and
// performs two flops with it, so R(M) → 2 independent of M: the computation
// is I/O bounded and cannot be rebalanced by memory alone.
func MatrixVector() Computation {
	return Computation{
		Name:      "matrix-vector multiplication",
		Section:   "§3.6",
		IOBounded: true,
		Law:       ImpossibleLaw{},
		Ratio:     func(float64) float64 { return 2 },
		MinMemory: 1,
	}
}

// TriangularSolve is §3.6: solving Tx = b touches each of the ~N²/2 matrix
// words once for two flops, so like matrix-vector multiplication it is I/O
// bounded: R(M) → 2 for all M.
func TriangularSolve() Computation {
	return Computation{
		Name:      "triangular linear system solution",
		Section:   "§3.6",
		IOBounded: true,
		Law:       ImpossibleLaw{},
		Ratio:     func(float64) float64 { return 2 },
		MinMemory: 1,
	}
}

// SparseMatVec makes the paper's §4 remark about "sparse matrix operations
// that have relatively high I/O requirements" concrete: CSR y = A·x reads
// three words per stored element (value, column index, x element — the
// random access defeats blocking) for two flops, so R(M) → 2/3 for all M.
// Like the §3.6 kernels, it cannot be rebalanced by memory alone, which is
// why the paper's aggregate assumption (6) treats α² as a floor for
// scientific workloads.
func SparseMatVec() Computation {
	return Computation{
		Name:      "sparse matrix-vector multiplication",
		Section:   "§4 (sparse remark)",
		IOBounded: true,
		Law:       ImpossibleLaw{},
		Ratio:     func(float64) float64 { return 2.0 / 3.0 },
		MinMemory: 1,
	}
}

// Convolution is an extension beyond the paper's catalog, in the direction
// §5 invites ("characterizing other computations"): a k-tap FIR filter
// streams its input once past a 2k-word resident state, so R(M) = k for all
// M ≥ 2k. The ratio is operator-bound rather than memory-bound: a third
// family beside the paper's memory-elastic (§3.1–§3.5) and memory-inelastic
// (§3.6) computations. Rebalancing after an α increase requires widening
// the operator to α·k taps — memory grows only linearly (2αk words), but
// the computation itself must change.
func Convolution(k int) Computation {
	if k < 1 {
		panic(fmt.Sprintf("model: convolution taps %d must be ≥ 1", k))
	}
	kf := float64(k)
	return Computation{
		Name:      fmt.Sprintf("%d-tap convolution", k),
		Section:   "extension (§5)",
		IOBounded: true, // w.r.t. memory: no M enlargement helps
		Law:       ImpossibleLaw{},
		Ratio: func(m float64) float64 {
			if m < 2*kf {
				// Below the operator footprint the delay line
				// cannot be held; charge re-reads.
				return m / 2
			}
			return kf
		},
		MinMemory: 2 * kf,
	}
}

// Catalog returns every computation analyzed in the paper, in the order of
// the §3 summary: matrix multiplication, triangularization, 2-D grid, 3-D
// grid (as the d-dimensional representative), FFT, sorting, and the two
// I/O-bounded computations.
func Catalog() []Computation {
	return []Computation{
		MatrixMultiplication(),
		MatrixTriangularization(),
		Grid(2),
		Grid(3),
		FFT(),
		Sorting(),
		MatrixVector(),
		TriangularSolve(),
	}
}

// Warp returns the per-cell PE parameters of the CMU Warp machine quoted in
// paper §5: 10 MFLOPS of computation bandwidth, 20 Mwords/s of inter-cell
// I/O bandwidth, and up to 64K 32-bit words of local memory per cell.
func Warp() PE {
	return PE{C: 10e6, IO: 20e6, M: 64 * 1024}
}

// WarpCells is the number of linearly connected cells in the 1985 Warp
// array, used by the §4.1/§5 array experiments.
const WarpCells = 10
