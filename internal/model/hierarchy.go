package model

// Multi-level memory hierarchies. Kung's model (pe.go) describes one local
// memory M behind one I/O channel IO; every machine we would analyze has a
// hierarchy — registers feed from cache, cache from DRAM, DRAM from disk.
// Hanlon's observation (emulating a large memory with a collection of
// smaller ones) composes here: the region inside boundary i behaves like a
// flat PE whose local memory is the *cumulative* capacity of levels 1..i and
// whose I/O channel is boundary i's bandwidth, so the paper's balance test
// Ccomp/C = Cio/IO applies per boundary. A machine can be cache-balanced and
// disk-I/O-bound at once; the binding boundary — the one with the worst
// I/O-to-compute time ratio — classifies the whole hierarchy, and the flat
// PE is exactly the one-level special case.

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Level is one memory level of a hierarchy: a capacity of M words filled
// through its outer boundary at BW words per second. Levels are ordered
// innermost (fastest, closest to the compute unit) first, so a Level's BW is
// the bandwidth of the channel connecting everything at or inside this level
// to the next level out (or to the outside world, for the last level).
type Level struct {
	// Name optionally labels the level ("cache", "dram", "disk"…).
	Name string
	// BW is the bandwidth across this level's outer boundary, in words
	// per second.
	BW float64
	// M is the level's capacity in words.
	M float64
}

// String renders the level in (BW, M) notation.
func (l Level) String() string {
	name := l.Name
	if name == "" {
		name = "level"
	}
	return fmt.Sprintf("%s{BW=%s words/s, M=%s words}", name, siNumber(l.BW), siNumber(l.M))
}

// Hierarchy is a multi-level machine description: a compute unit of
// bandwidth C ops/s above an ordered list of memory levels, innermost
// first. The flat PE is the exact one-level special case (FromPE / Flat).
type Hierarchy struct {
	// C is the computation bandwidth in operations per second.
	C float64
	// Levels are the memory levels, innermost first. Boundary i (1-based)
	// separates levels 1..i from level i+1 (or the outside world) and
	// carries Levels[i-1].BW.
	Levels []Level
}

// ErrNonMonotoneHierarchy marks a hierarchy whose boundary bandwidths grow
// outward: an outer channel faster than an inner one means the "hierarchy"
// is mis-ordered, and every per-boundary statement below would be about the
// wrong machine. Validate wraps it with the offending boundary pair.
var ErrNonMonotoneHierarchy = errors.New("model: hierarchy bandwidths must be non-increasing outward")

// FromPE lifts a flat PE into its equivalent one-level hierarchy.
func FromPE(pe PE) Hierarchy {
	return Hierarchy{C: pe.C, Levels: []Level{{BW: pe.IO, M: pe.M}}}
}

// Flat returns the equivalent flat PE and true when the hierarchy has
// exactly one level; ok is false otherwise.
func (h Hierarchy) Flat() (pe PE, ok bool) {
	if len(h.Levels) != 1 {
		return PE{}, false
	}
	return PE{C: h.C, IO: h.Levels[0].BW, M: h.Levels[0].M}, true
}

// Depth returns the number of levels (= number of boundaries).
func (h Hierarchy) Depth() int { return len(h.Levels) }

// Validate reports whether the hierarchy is physically meaningful: positive
// finite compute bandwidth, at least one level, positive finite per-level
// bandwidths and capacities, and bandwidths non-increasing outward (the
// monotonicity violation is typed as ErrNonMonotoneHierarchy).
func (h Hierarchy) Validate() error {
	if !(h.C > 0) || math.IsInf(h.C, 0) {
		return fmt.Errorf("model: computation bandwidth C=%v must be positive and finite", h.C)
	}
	if len(h.Levels) == 0 {
		return errors.New("model: hierarchy needs at least one level")
	}
	for i, l := range h.Levels {
		if !(l.BW > 0) || math.IsInf(l.BW, 0) {
			return fmt.Errorf("model: level %d bandwidth BW=%v must be positive and finite", i+1, l.BW)
		}
		if !(l.M > 0) || math.IsInf(l.M, 0) {
			return fmt.Errorf("model: level %d capacity M=%v must be positive and finite", i+1, l.M)
		}
		if math.IsInf(h.C/l.BW, 0) {
			return fmt.Errorf("model: boundary %d intensity C/BW = %v/%v overflows", i+1, h.C, l.BW)
		}
		if i > 0 && l.BW > h.Levels[i-1].BW {
			return fmt.Errorf("%w: level %d has BW=%v behind level %d with BW=%v",
				ErrNonMonotoneHierarchy, i+1, l.BW, i, h.Levels[i-1].BW)
		}
	}
	return nil
}

// CapacityWithin returns the cumulative capacity inside boundary b (1-based):
// the sum of the capacities of levels 1..b — the effective local memory of
// the region boundary b feeds, in the Hanlon composition sense.
func (h Hierarchy) CapacityWithin(b int) float64 {
	var sum float64
	for i := 0; i < b && i < len(h.Levels); i++ {
		sum += h.Levels[i].M
	}
	return sum
}

// TotalCapacity returns the hierarchy's summed capacity.
func (h Hierarchy) TotalCapacity() float64 { return h.CapacityWithin(len(h.Levels)) }

// BoundaryIntensity returns C/BW at boundary b (1-based) — the machine-side
// ratio the computation's achievable ratio must match there for balance.
func (h Hierarchy) BoundaryIntensity(b int) float64 { return h.C / h.Levels[b-1].BW }

// String renders the hierarchy compute-first, innermost level first.
func (h Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hierarchy{C=%s ops/s", siNumber(h.C))
	for _, l := range h.Levels {
		fmt.Fprintf(&b, " | %s@%s", siNumber(l.M), siNumber(l.BW))
	}
	b.WriteString("}")
	return b.String()
}

// BoundaryAnalysis is the paper's balance diagnosis applied to one boundary:
// the region inside boundary b, treated as a flat PE with memory
// CapacityWithin(b) and I/O bandwidth Levels[b-1].BW.
type BoundaryAnalysis struct {
	// Boundary is the 1-based boundary index (boundary b sits outside
	// level b).
	Boundary int
	// Level is the level whose outer boundary this is.
	Level Level
	// CapacityWithin is the cumulative capacity inside the boundary.
	CapacityWithin float64
	// Intensity is C/BW at this boundary.
	Intensity float64
	// AchievableRatio is R(CapacityWithin) for the computation.
	AchievableRatio float64
	// State classifies this boundary: balanced, I/O bound, or compute
	// bound.
	State BalanceState
	// BalancedMemory is the minimum cumulative capacity inside this
	// boundary that balances it; 0 when unreachable.
	BalancedMemory float64
	// Rebalanceable is false when no capacity balances this boundary
	// (I/O-bounded computations).
	Rebalanceable bool
}

// HierarchyAnalysis is the balance diagnosis of a whole hierarchy running
// one computation: every boundary's verdict plus the binding boundary.
type HierarchyAnalysis struct {
	Computation string
	Hierarchy   Hierarchy
	// Boundaries holds one diagnosis per boundary, innermost first.
	Boundaries []BoundaryAnalysis
	// Binding is the 1-based index of the binding boundary — the one with
	// the largest I/O-to-compute time ratio, which limits the machine.
	Binding int
	// State is the hierarchy's overall classification: the binding
	// boundary's state. A hierarchy is balanced only when its binding
	// boundary is (and then, by definition of binding, every other
	// boundary is balanced or compute bound).
	State BalanceState
}

// BindingBoundary returns the binding boundary's diagnosis.
func (a HierarchyAnalysis) BindingBoundary() BoundaryAnalysis {
	return a.Boundaries[a.Binding-1]
}

// boundaryScore orders boundaries by how badly I/O limits them: the ratio
// of I/O time to compute time, Intensity/R. A non-positive achievable ratio
// (a capacity below the computation's meaningful regime) is maximally bound.
func boundaryScore(intensity, ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(1)
	}
	return intensity / ratio
}

// AnalyzeHierarchy diagnoses a hierarchy against a computation: each
// adjacent-level boundary gets the paper's balance test — intensity C/BW
// against the achievable ratio at the cumulative capacity inside it — and
// the binding boundary (worst I/O-to-compute time ratio) classifies the
// machine. maxM bounds the per-boundary balanced-capacity searches. A
// one-level hierarchy reproduces Analyze on the equivalent flat PE exactly.
func AnalyzeHierarchy(h Hierarchy, c Computation, maxM float64) (HierarchyAnalysis, error) {
	if err := h.Validate(); err != nil {
		return HierarchyAnalysis{}, err
	}
	a := HierarchyAnalysis{
		Computation: c.Name,
		Hierarchy:   h,
		Boundaries:  make([]BoundaryAnalysis, len(h.Levels)),
		Binding:     1,
	}
	worst := math.Inf(-1)
	for i := range h.Levels {
		b := BoundaryAnalysis{
			Boundary:       i + 1,
			Level:          h.Levels[i],
			CapacityWithin: h.CapacityWithin(i + 1),
			Intensity:      h.BoundaryIntensity(i + 1),
		}
		b.AchievableRatio = c.Ratio(b.CapacityWithin)
		switch {
		case nearlyEqual(b.Intensity, b.AchievableRatio, BalanceTolerance):
			b.State = Balanced
		case b.Intensity > b.AchievableRatio:
			b.State = IOBound
		default:
			b.State = ComputeBound
		}
		m, err := c.RequiredMemory(b.Intensity, maxM)
		if err == nil {
			b.BalancedMemory = m
			b.Rebalanceable = true
		} else if !isNotRebalanceable(err) {
			return HierarchyAnalysis{}, err
		}
		a.Boundaries[i] = b
		if score := boundaryScore(b.Intensity, b.AchievableRatio); score > worst {
			worst, a.Binding = score, i+1
		}
	}
	a.State = a.Boundaries[a.Binding-1].State
	return a, nil
}

// BoundaryRebalance is one boundary's share of the rebalancing answer: the
// capacity the region inside it must reach once C/BW has grown by α.
type BoundaryRebalance struct {
	// Boundary is the 1-based boundary index.
	Boundary int
	// Intensity is the post-growth machine ratio α·C/BW the boundary must
	// support.
	Intensity float64
	// RequiredWithin is the minimum cumulative capacity inside the
	// boundary that balances it at the new intensity; 0 when unreachable.
	RequiredWithin float64
	// Rebalanceable is false when no capacity reaches the new intensity.
	Rebalanceable bool
}

// LevelBill is one level's line of the memory bill: its new capacity and
// the growth over what it has.
type LevelBill struct {
	// Level is the current level (name, bandwidth, old capacity).
	Level Level
	// MNew is the level's required new capacity (never below Level.M —
	// rebalancing enlarges memories, it does not shrink them).
	MNew float64
	// Delta is MNew − Level.M ≥ 0.
	Delta float64
}

// HierarchyRebalance answers the paper's central question for a hierarchy:
// after the compute bandwidth grows by α, what is the per-level memory bill
// that restores balance at every boundary?
type HierarchyRebalance struct {
	Computation string
	Alpha       float64
	// Boundaries holds each boundary's required cumulative capacity.
	Boundaries []BoundaryRebalance
	// Bill is the per-level answer: each level's new capacity, chosen so
	// that every boundary's cumulative requirement is met with the least
	// total growth and no level shrinks.
	Bill []LevelBill
	// Binding is the 1-based boundary whose requirement drives the total
	// (the largest RequiredWithin).
	Binding int
	// TotalMemory is the summed new capacity; TotalDelta the summed
	// growth.
	TotalMemory float64
	TotalDelta  float64
	// Rebalanceable is false when any boundary's new intensity is
	// unreachable at any capacity (I/O-bounded computations, paper §3.6);
	// Bill and the totals are then zero.
	Rebalanceable bool
}

// RebalanceHierarchy computes the hierarchy's memory bill for a growth of
// the compute bandwidth by α: each boundary's post-growth intensity α·C/BW
// is inverted through the computation's ratio function (the growth law
// applied at that boundary), the per-boundary cumulative requirements are
// reconciled into per-level capacities (running greedily innermost-out, so
// capacity already bought inside a boundary counts toward it), and the
// binding boundary — the one demanding the most memory — is reported. For a
// one-level hierarchy that was balanced, the bill reduces to the flat
// Computation.Rebalance answer.
func RebalanceHierarchy(h Hierarchy, c Computation, alpha, maxM float64) (HierarchyRebalance, error) {
	if err := h.Validate(); err != nil {
		return HierarchyRebalance{}, err
	}
	if err := checkRebalanceArgs(alpha, h.TotalCapacity()); err != nil {
		return HierarchyRebalance{}, err
	}
	r := HierarchyRebalance{
		Computation:   c.Name,
		Alpha:         alpha,
		Boundaries:    make([]BoundaryRebalance, len(h.Levels)),
		Binding:       1,
		Rebalanceable: true,
	}
	var worst float64
	for i := range h.Levels {
		b := BoundaryRebalance{
			Boundary:  i + 1,
			Intensity: alpha * h.BoundaryIntensity(i+1),
		}
		if math.IsInf(b.Intensity, 0) {
			return HierarchyRebalance{}, fmt.Errorf(
				"model: post-growth intensity α·C/BW = %v·%v overflows at boundary %d",
				alpha, h.BoundaryIntensity(i+1), i+1)
		}
		m, err := c.RequiredMemory(b.Intensity, maxM)
		switch {
		case err == nil:
			b.RequiredWithin = m
			b.Rebalanceable = true
		case isNotRebalanceable(err):
			r.Rebalanceable = false
		default:
			return HierarchyRebalance{}, err
		}
		r.Boundaries[i] = b
		if b.RequiredWithin > worst {
			worst, r.Binding = b.RequiredWithin, i+1
		}
	}
	if !r.Rebalanceable {
		return r, nil
	}
	// Reconcile cumulative requirements into per-level capacities: walk
	// innermost-out keeping a running cumulative; each level keeps at
	// least its current capacity and grows only by what the strictest
	// requirement so far still lacks.
	r.Bill = make([]LevelBill, len(h.Levels))
	var cum, need float64
	for i, l := range h.Levels {
		if req := r.Boundaries[i].RequiredWithin; req > need {
			need = req
		}
		mNew := l.M
		if short := need - cum; short > mNew {
			mNew = short
		}
		r.Bill[i] = LevelBill{Level: l, MNew: mNew, Delta: mNew - l.M}
		cum += mNew
		r.TotalMemory += mNew
		r.TotalDelta += mNew - l.M
	}
	return r, nil
}
