package model

// Property-based tests (testing/quick) for the analytic core. The paper's
// statements are universally quantified — for *any* balanced PE and *any*
// α ≥ 1 the growth laws restore balance — so the tests quantify too,
// instead of checking hand-picked examples.

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

var quickConfig = &quick.Config{MaxCount: 400}

// propComputations is the catalog plus the extension entries, covering
// every growth-law family: α^d, M^α, and Θ(1).
func propComputations() []Computation {
	return append(Catalog(), Grid(4), SparseMatVec(), Convolution(16))
}

// scale01 maps a raw fuzzed uint16 onto [0, 1].
func scale01(raw uint16) float64 { return float64(raw) / math.MaxUint16 }

// drawMOld maps raw log-uniformly onto [MinMemory (≥2), 10⁶] so every ratio
// function is in its meaningful regime and M_old^α stays far below the
// numeric search cap.
func drawMOld(c Computation, raw uint16) float64 {
	lo := math.Max(c.MinMemory, 2)
	return lo * math.Pow(1e6/lo, scale01(raw))
}

// drawAlpha maps raw onto [1.01, 2]: strictly above 1 so the Θ(1)
// computations are genuinely unrebalanceable, and small enough that even
// the exponential law's M_old^α stays finite.
func drawAlpha(raw uint16) float64 { return 1.01 + 0.99*scale01(raw) }

// TestQuickRebalanceRestoresBalance: start from a PE balanced at M_old,
// grow C/IO by α, enlarge the memory to Rebalance's answer — Analyze must
// report the new PE balanced. For the Θ(1) computations the property is
// the opposite one: Rebalance must answer ErrNotRebalanceable, and Analyze
// of the faster PE must report it not rebalanceable at any memory size.
func TestQuickRebalanceRestoresBalance(t *testing.T) {
	for _, comp := range propComputations() {
		comp := comp
		prop := func(rawM, rawA uint16) bool {
			mOld := drawMOld(comp, rawM)
			alpha := drawAlpha(rawA)
			const io = 1e6
			x0 := comp.Ratio(mOld)

			mNew, err := comp.Rebalance(alpha, mOld, DefaultPropMaxMemory)
			if comp.IOBounded {
				if !errors.Is(err, ErrNotRebalanceable) {
					t.Logf("%s: α=%v M_old=%v: err = %v, want ErrNotRebalanceable", comp.Name, alpha, mOld, err)
					return false
				}
				a, aerr := Analyze(PE{C: alpha * x0 * io, IO: io, M: mOld}, comp, DefaultPropMaxMemory)
				if aerr != nil || a.Rebalanceable {
					t.Logf("%s: faster PE analyzed as rebalanceable (%+v, %v)", comp.Name, a, aerr)
					return false
				}
				return true
			}
			if err != nil {
				t.Logf("%s: α=%v M_old=%v: unexpected error %v", comp.Name, alpha, mOld, err)
				return false
			}
			if mNew < mOld {
				t.Logf("%s: rebalancing shrank memory: %v < %v", comp.Name, mNew, mOld)
				return false
			}
			a, aerr := Analyze(PE{C: alpha * x0 * io, IO: io, M: mNew}, comp, DefaultPropMaxMemory)
			if aerr != nil {
				t.Logf("%s: Analyze: %v", comp.Name, aerr)
				return false
			}
			if a.State != Balanced {
				t.Logf("%s: α=%v M_old=%v M_new=%v: state %v, want balanced", comp.Name, alpha, mOld, mNew, a.State)
				return false
			}
			if !a.Rebalanceable || a.BalancedMemory > mNew*(1+1e-9) {
				t.Logf("%s: BalancedMemory %v exceeds M_new %v", comp.Name, a.BalancedMemory, mNew)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// DefaultPropMaxMemory bounds the numeric searches in the property tests.
const DefaultPropMaxMemory = 1e18

// TestQuickMNewMonotoneInAlpha: for every growth-law family, M_new is
// monotone non-decreasing in α — more intensity never needs less memory.
// Checked on the closed forms and on the numeric inversion (which must
// agree with them up to bisection jitter).
func TestQuickMNewMonotoneInAlpha(t *testing.T) {
	for _, comp := range propComputations() {
		if comp.IOBounded {
			continue // no M_new exists; covered by the property above
		}
		comp := comp
		prop := func(rawM, rawA1, rawA2 uint16) bool {
			mOld := drawMOld(comp, rawM)
			a1, a2 := drawAlpha(rawA1), drawAlpha(rawA2)
			if a1 > a2 {
				a1, a2 = a2, a1
			}
			cf1, err1 := comp.RebalanceClosedForm(a1, mOld)
			cf2, err2 := comp.RebalanceClosedForm(a2, mOld)
			if err1 != nil || err2 != nil {
				t.Logf("%s: closed form errored: %v / %v", comp.Name, err1, err2)
				return false
			}
			if cf2 < cf1 {
				t.Logf("%s: closed form not monotone: MNew(%v)=%v > MNew(%v)=%v",
					comp.Name, a1, cf1, a2, cf2)
				return false
			}
			n1, err1 := comp.Rebalance(a1, mOld, DefaultPropMaxMemory)
			n2, err2 := comp.Rebalance(a2, mOld, DefaultPropMaxMemory)
			if err1 != nil || err2 != nil {
				t.Logf("%s: numeric rebalance errored: %v / %v", comp.Name, err1, err2)
				return false
			}
			// Bisection answers carry ~1e-12 relative jitter.
			if n2 < n1*(1-1e-9) {
				t.Logf("%s: numeric inversion not monotone: MNew(%v)=%v > MNew(%v)=%v",
					comp.Name, a1, n1, a2, n2)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// TestQuickClosedFormMatchesNumeric: the paper's closed-form law and the
// numeric inversion of the measured ratio function answer the same
// question; they must agree to within the laws' leading-term accuracy.
func TestQuickClosedFormMatchesNumeric(t *testing.T) {
	for _, comp := range propComputations() {
		if comp.IOBounded {
			continue
		}
		comp := comp
		prop := func(rawM, rawA uint16) bool {
			mOld := drawMOld(comp, rawM)
			alpha := drawAlpha(rawA)
			num, errN := comp.Rebalance(alpha, mOld, DefaultPropMaxMemory)
			cf, errC := comp.RebalanceClosedForm(alpha, mOld)
			if errN != nil || errC != nil {
				t.Logf("%s: %v / %v", comp.Name, errN, errC)
				return false
			}
			rel := math.Abs(num-cf) / cf
			if rel > 0.02 {
				t.Logf("%s: α=%v M_old=%v: numeric %v vs closed form %v (rel %.3g)",
					comp.Name, alpha, mOld, num, cf, rel)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// TestQuickRebalanceRejectsBadArgs: the argument contract holds for any
// out-of-range α or M_old, for every law family.
func TestQuickRebalanceRejectsBadArgs(t *testing.T) {
	for _, comp := range propComputations() {
		comp := comp
		prop := func(rawA, rawM uint16) bool {
			badAlpha := 0.999 * scale01(rawA) // [0, 1)
			badM := -1e6 * scale01(rawM)      // ≤ 0
			if _, err := comp.Rebalance(badAlpha, 1024, DefaultPropMaxMemory); err == nil {
				t.Logf("%s: α=%v accepted", comp.Name, badAlpha)
				return false
			}
			if _, err := comp.RebalanceClosedForm(2, badM); err == nil {
				t.Logf("%s: M_old=%v accepted", comp.Name, badM)
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}
