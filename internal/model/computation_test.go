package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const maxSearchM = 1e18

// relErr returns |got-want|/want.
func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d entries, want 8", len(cat))
	}
	seen := map[string]bool{}
	for _, c := range cat {
		if c.Name == "" || c.Section == "" || c.Law == nil || c.Ratio == nil {
			t.Errorf("incomplete catalog entry: %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate catalog entry %q", c.Name)
		}
		seen[c.Name] = true
		if c.MinMemory <= 0 {
			t.Errorf("%s: MinMemory = %v", c.Name, c.MinMemory)
		}
	}
}

// TestNumericMatchesClosedForm verifies the central consistency property of
// the model: inverting the ratio function numerically (Rebalance) reproduces
// the paper's closed-form growth law (RebalanceClosedForm) for every
// computation-bounded entry.
func TestNumericMatchesClosedForm(t *testing.T) {
	cases := []struct {
		comp  Computation
		mOld  float64
		alpha float64
	}{
		{MatrixMultiplication(), 1024, 2},
		{MatrixMultiplication(), 1024, 4},
		{MatrixMultiplication(), 4096, 8},
		{MatrixTriangularization(), 256, 3},
		{Grid(1), 81, 2},
		{Grid(2), 1024, 2},
		{Grid(3), 4096, 2},
		{Grid(4), 65536, 2},
		{FFT(), 64, 2},
		{FFT(), 256, 1.5},
		{Sorting(), 64, 2},
		{Sorting(), 1024, 1.25},
	}
	for _, tc := range cases {
		want, err := tc.comp.RebalanceClosedForm(tc.alpha, tc.mOld)
		if err != nil {
			t.Fatalf("%s closed form: %v", tc.comp.Name, err)
		}
		got, err := tc.comp.Rebalance(tc.alpha, tc.mOld, maxSearchM)
		if err != nil {
			t.Fatalf("%s numeric: %v", tc.comp.Name, err)
		}
		if relErr(got, want) > 1e-6 {
			t.Errorf("%s α=%v mOld=%v: numeric %v vs closed form %v",
				tc.comp.Name, tc.alpha, tc.mOld, got, want)
		}
	}
}

func TestIOBoundedNotRebalanceable(t *testing.T) {
	for _, c := range []Computation{MatrixVector(), TriangularSolve()} {
		if !c.IOBounded {
			t.Errorf("%s should be flagged IOBounded", c.Name)
		}
		if _, err := c.Rebalance(2, 1024, maxSearchM); !errors.Is(err, ErrNotRebalanceable) {
			t.Errorf("%s: numeric rebalance err = %v, want ErrNotRebalanceable", c.Name, err)
		}
		if _, err := c.RebalanceClosedForm(2, 1024); !errors.Is(err, ErrNotRebalanceable) {
			t.Errorf("%s: closed-form rebalance err = %v, want ErrNotRebalanceable", c.Name, err)
		}
		// α = 1 leaves the PE balanced as-is.
		if m, err := c.Rebalance(1, 1024, maxSearchM); err != nil || m > 1024 {
			t.Errorf("%s: α=1 gave (%v, %v)", c.Name, m, err)
		}
	}
}

func TestRequiredMemoryMatmul(t *testing.T) {
	mm := MatrixMultiplication()
	// Intensity 32 needs M = 32² = 1024.
	m, err := mm.RequiredMemory(32, maxSearchM)
	if err != nil {
		t.Fatal(err)
	}
	if relErr(m, 1024) > 1e-6 {
		t.Errorf("RequiredMemory(32) = %v, want 1024", m)
	}
	// Intensity below the ratio at MinMemory is satisfied at MinMemory.
	m, err = mm.RequiredMemory(0.5, maxSearchM)
	if err != nil {
		t.Fatal(err)
	}
	if m != mm.MinMemory {
		t.Errorf("tiny intensity: RequiredMemory = %v, want MinMemory %v", m, mm.MinMemory)
	}
}

func TestRequiredMemoryCapsAtMax(t *testing.T) {
	mm := MatrixMultiplication()
	if _, err := mm.RequiredMemory(1e12, 1e6); !errors.Is(err, ErrNotRebalanceable) {
		t.Errorf("unreachable intensity: err = %v, want ErrNotRebalanceable", err)
	}
	if _, err := mm.RequiredMemory(-1, 1e6); err == nil {
		t.Error("negative intensity accepted")
	}
}

func TestAnalyzeWarpMatmul(t *testing.T) {
	// Warp per cell: C/IO = 0.5; matmul with 64K words achieves √M = 256.
	// The cell is massively compute bound for matmul — its I/O channel
	// could feed a far faster multiplier (paper §5 makes this point:
	// Warp's large IO and memory reflect the paper's results).
	a, err := Analyze(Warp(), MatrixMultiplication(), maxSearchM)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != ComputeBound {
		t.Errorf("Warp matmul state = %v, want compute bound", a.State)
	}
	if !a.Rebalanceable {
		t.Error("Warp matmul should be rebalanceable")
	}
	// Balance needs only √M = 0.5 → MinMemory suffices.
	if a.BalancedMemory != MatrixMultiplication().MinMemory {
		t.Errorf("BalancedMemory = %v, want MinMemory", a.BalancedMemory)
	}
}

func TestAnalyzeIOBoundPE(t *testing.T) {
	// A PE with intensity 100 running matvec can never balance.
	pe := PE{C: 1e9, IO: 1e7, M: 1 << 20}
	a, err := Analyze(pe, MatrixVector(), maxSearchM)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != IOBound {
		t.Errorf("state = %v, want I/O bound", a.State)
	}
	if a.Rebalanceable {
		t.Error("matvec at intensity 100 must not be rebalanceable")
	}
}

func TestAnalyzeBalancedExactly(t *testing.T) {
	// Construct a PE whose intensity equals √M exactly.
	pe := PE{C: 32e6, IO: 1e6, M: 1024}
	a, err := Analyze(pe, MatrixMultiplication(), maxSearchM)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != Balanced {
		t.Errorf("state = %v, want balanced (intensity=%v ratio=%v)",
			a.State, a.Intensity, a.AchievableRatio)
	}
}

func TestAnalyzeRejectsInvalidPE(t *testing.T) {
	if _, err := Analyze(PE{}, MatrixMultiplication(), maxSearchM); err == nil {
		t.Error("invalid PE accepted")
	}
}

func TestGridPanicsOnBadDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(0) did not panic")
		}
	}()
	Grid(0)
}

func TestComputationString(t *testing.T) {
	s := MatrixMultiplication().String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// Property: for every computation-bounded catalog entry, the numeric
// rebalance solver agrees with the closed-form law across random α and M_old.
func TestRebalanceAgreementProperty(t *testing.T) {
	comps := []Computation{
		MatrixMultiplication(), MatrixTriangularization(),
		Grid(2), Grid(3), FFT(), Sorting(),
	}
	f := func(ci uint8, a16, m16 uint16) bool {
		c := comps[int(ci)%len(comps)]
		alpha := 1 + float64(a16%300)/100 // [1, 4)
		mOld := 16 + float64(m16%4096)    // [16, 4112)
		want, err := c.RebalanceClosedForm(alpha, mOld)
		if err != nil {
			return false
		}
		if want > maxSearchM/4 {
			return true // exponential law can overflow the search cap; skip
		}
		got, err := c.Rebalance(alpha, mOld, maxSearchM)
		if err != nil {
			return false
		}
		return relErr(got, want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RequiredMemory is monotone in the intensity target.
func TestRequiredMemoryMonotoneProperty(t *testing.T) {
	comps := []Computation{MatrixMultiplication(), Grid(3), FFT(), Sorting()}
	f := func(ci uint8, x16 uint16) bool {
		c := comps[int(ci)%len(comps)]
		x := 1 + float64(x16%1000)/10 // [1, 101)
		m1, err1 := c.RequiredMemory(x, maxSearchM)
		m2, err2 := c.RequiredMemory(x*1.5, maxSearchM)
		if errors.Is(err1, ErrNotRebalanceable) || errors.Is(err2, ErrNotRebalanceable) {
			// Log-shaped ratios need memory beyond the search cap for
			// large intensities; unreachable targets are not a
			// monotonicity violation.
			return true
		}
		if err1 != nil || err2 != nil {
			return false
		}
		return m2 >= m1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConvolutionExtension(t *testing.T) {
	c := Convolution(16)
	if !c.IOBounded {
		t.Error("convolution should be memory-inelastic (IOBounded)")
	}
	// Above the operator footprint the ratio is pinned at k.
	if got := c.Ratio(64); got != 16 {
		t.Errorf("ratio at ample memory = %v, want 16", got)
	}
	if got := c.Ratio(1 << 20); got != 16 {
		t.Errorf("ratio at huge memory = %v, want 16", got)
	}
	// Below it, the delay line cannot be held.
	if got := c.Ratio(8); got >= 16 {
		t.Errorf("ratio below footprint = %v, want < 16", got)
	}
	// Memory cannot rebalance it.
	if _, err := c.Rebalance(2, 64, 1e18); !errors.Is(err, ErrNotRebalanceable) {
		t.Errorf("rebalance err = %v, want ErrNotRebalanceable", err)
	}
	// But a wider operator can: Convolution(32) balances intensity 32.
	wide := Convolution(32)
	m, err := wide.RequiredMemory(32, 1e18)
	if err != nil {
		t.Fatalf("wide operator: %v", err)
	}
	if m != 64 {
		t.Errorf("wide operator needs M = %v, want 64 (= 2k)", m)
	}
}

func TestConvolutionPanicsOnBadTaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Convolution(0) did not panic")
		}
	}()
	Convolution(0)
}
