package model

import (
	"fmt"
	"math"
)

// GrowthLaw is one row of the paper's §3 summary: how the minimum balanced
// local memory M_new relates to M_old when C/IO grows by a factor α.
type GrowthLaw interface {
	// MNew returns the minimum new memory size for the given α and old
	// memory size, or ErrNotRebalanceable for I/O-bounded computations.
	MNew(alpha, mOld float64) (float64, error)
	// Describe renders the law in the paper's notation.
	Describe() string
}

// PolynomialLaw is M_new = α^Degree · M_old. Degree 2 covers matrix
// multiplication, triangularization and 2-D grids; Degree d covers
// d-dimensional grid computations (paper §3.1–§3.3).
type PolynomialLaw struct {
	Degree float64
}

// MNew implements GrowthLaw.
func (l PolynomialLaw) MNew(alpha, mOld float64) (float64, error) {
	if err := checkRebalanceArgs(alpha, mOld); err != nil {
		return 0, err
	}
	return math.Pow(alpha, l.Degree) * mOld, nil
}

// Describe implements GrowthLaw.
func (l PolynomialLaw) Describe() string {
	if l.Degree == 2 {
		return "M_new = α²·M_old"
	}
	return fmt.Sprintf("M_new = α^%g·M_old", l.Degree)
}

// ExponentialLaw is M_new = M_old^α, the FFT and sorting law (paper §3.4,
// §3.5): the memory must grow exponentially in the bandwidth ratio increase.
type ExponentialLaw struct{}

// MNew implements GrowthLaw.
func (ExponentialLaw) MNew(alpha, mOld float64) (float64, error) {
	if err := checkRebalanceArgs(alpha, mOld); err != nil {
		return 0, err
	}
	return math.Pow(mOld, alpha), nil
}

// Describe implements GrowthLaw.
func (ExponentialLaw) Describe() string { return "M_new = M_old^α" }

// ImpossibleLaw marks I/O-bounded computations (paper §3.6): rebalancing by
// memory enlargement alone is impossible.
type ImpossibleLaw struct{}

// MNew implements GrowthLaw.
func (ImpossibleLaw) MNew(alpha, mOld float64) (float64, error) {
	if err := checkRebalanceArgs(alpha, mOld); err != nil {
		return 0, err
	}
	if alpha == 1 {
		return mOld, nil // nothing changed; the PE is still balanced
	}
	return 0, ErrNotRebalanceable
}

// Describe implements GrowthLaw.
func (ImpossibleLaw) Describe() string {
	return "impossible: rebalancing requires more I/O bandwidth"
}

func checkRebalanceArgs(alpha, mOld float64) error {
	if !(alpha >= 1) || math.IsInf(alpha, 0) {
		return fmt.Errorf("model: bandwidth ratio increase α=%v must be ≥ 1 and finite", alpha)
	}
	if !(mOld > 0) || math.IsInf(mOld, 0) {
		return fmt.Errorf("model: old memory size M_old=%v must be positive and finite", mOld)
	}
	return nil
}
