package model

// Property-based tests (testing/quick) for the hierarchy core, mirroring
// quick_test.go's discipline: the claims are universally quantified — a
// one-level hierarchy IS the flat PE, rebalancing is monotone in α, and a
// hierarchy built balanced analyzes balanced at every boundary — so the
// tests quantify instead of spot-checking.

import (
	"math"
	"testing"
	"testing/quick"
)

// drawHierarchy builds a valid hierarchy from fuzzed raw words: 1–4 levels,
// log-uniform capacities in [8, 10⁶] per level, bandwidths decreasing
// outward from a log-uniform head, compute rate a multiple of the innermost
// bandwidth. Always passes Validate by construction.
func drawHierarchy(rawC, rawBW uint16, rawM [4]uint16, depth int) Hierarchy {
	if depth < 1 {
		depth = 1
	}
	if depth > 4 {
		depth = 4
	}
	bw := 1e6 * math.Pow(100, scale01(rawBW)) // [1e6, 1e8]
	h := Hierarchy{C: bw * (1 + 63*scale01(rawC))}
	for i := 0; i < depth; i++ {
		m := 8 * math.Pow(1e6/8, scale01(rawM[i]))
		h.Levels = append(h.Levels, Level{BW: bw, M: m})
		bw /= 2 // strictly decreasing outward
	}
	return h
}

// TestQuickOneLevelHierarchyEquivalentToFlatPE: for every computation in
// the extended catalog and any PE shape, AnalyzeHierarchy of the one-level
// lift agrees with Analyze of the flat PE on every field of the diagnosis.
func TestQuickOneLevelHierarchyEquivalentToFlatPE(t *testing.T) {
	for _, comp := range propComputations() {
		comp := comp
		prop := func(rawC, rawIO, rawM uint16) bool {
			pe := PE{
				C:  1e6 * (1 + 999*scale01(rawC)),
				IO: 1e6 * (1 + 9*scale01(rawIO)),
				M:  drawMOld(comp, rawM),
			}
			flat, errF := Analyze(pe, comp, DefaultPropMaxMemory)
			ha, errH := AnalyzeHierarchy(FromPE(pe), comp, DefaultPropMaxMemory)
			if (errF == nil) != (errH == nil) {
				t.Logf("%s: error mismatch: flat %v vs hierarchy %v", comp.Name, errF, errH)
				return false
			}
			if errF != nil {
				return true
			}
			b := ha.Boundaries[0]
			if ha.Binding != 1 || len(ha.Boundaries) != 1 {
				t.Logf("%s: one-level binding %d, boundaries %d", comp.Name, ha.Binding, len(ha.Boundaries))
				return false
			}
			if ha.State != flat.State || b.Intensity != flat.Intensity ||
				b.AchievableRatio != flat.AchievableRatio ||
				b.BalancedMemory != flat.BalancedMemory ||
				b.Rebalanceable != flat.Rebalanceable {
				t.Logf("%s: hierarchy %+v != flat %+v", comp.Name, b, flat)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// TestQuickOneLevelRebalanceMatchesFlat: start from a PE balanced at M_old
// (C = IO·R(M_old), the flat Rebalance premise); the one-level hierarchy
// bill must equal the flat answer.
func TestQuickOneLevelRebalanceMatchesFlat(t *testing.T) {
	for _, comp := range propComputations() {
		if comp.IOBounded {
			continue
		}
		comp := comp
		prop := func(rawM, rawA uint16) bool {
			mOld := drawMOld(comp, rawM)
			alpha := drawAlpha(rawA)
			const io = 1e6
			pe := PE{C: io * comp.Ratio(mOld), IO: io, M: mOld}
			if !(pe.C > 0) {
				return true // ratio ≤ 0 below the meaningful regime
			}
			flat, errF := comp.Rebalance(alpha, mOld, DefaultPropMaxMemory)
			hr, errH := RebalanceHierarchy(FromPE(pe), comp, alpha, DefaultPropMaxMemory)
			if errF != nil || errH != nil {
				t.Logf("%s: flat err %v, hierarchy err %v", comp.Name, errF, errH)
				return false
			}
			if !hr.Rebalanceable {
				t.Logf("%s: hierarchy not rebalanceable where flat answered %v", comp.Name, flat)
				return false
			}
			// Same question, same numeric search: the answers agree up to
			// bisection jitter (and the no-shrink floor at M_old).
			want := math.Max(flat, mOld)
			if rel := math.Abs(hr.TotalMemory-want) / want; rel > 1e-6 {
				t.Logf("%s: α=%v M_old=%v: hierarchy bill %v vs flat %v",
					comp.Name, alpha, mOld, hr.TotalMemory, want)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// TestQuickHierarchyRebalanceMonotoneInAlpha: per-boundary requirements and
// the total bill never decrease when α grows, on any drawn hierarchy shape.
func TestQuickHierarchyRebalanceMonotoneInAlpha(t *testing.T) {
	for _, comp := range propComputations() {
		if comp.IOBounded {
			continue
		}
		comp := comp
		prop := func(rawC, rawBW uint16, rawM [4]uint16, rawDepth uint8, rawA1, rawA2 uint16) bool {
			h := drawHierarchy(rawC, rawBW, rawM, 1+int(rawDepth)%4)
			a1, a2 := drawAlpha(rawA1), drawAlpha(rawA2)
			if a1 > a2 {
				a1, a2 = a2, a1
			}
			r1, err1 := RebalanceHierarchy(h, comp, a1, DefaultPropMaxMemory)
			r2, err2 := RebalanceHierarchy(h, comp, a2, DefaultPropMaxMemory)
			if err1 != nil || err2 != nil {
				t.Logf("%s: %v / %v", comp.Name, err1, err2)
				return false
			}
			if !r1.Rebalanceable || !r2.Rebalanceable {
				// The larger α may push a boundary out of reach while the
				// smaller one is fine — but never the reverse.
				if r1.Rebalanceable && !r2.Rebalanceable {
					return true
				}
				return !r1.Rebalanceable && !r2.Rebalanceable
			}
			for i := range r1.Boundaries {
				// Bisection answers carry ~1e-12 relative jitter.
				if r2.Boundaries[i].RequiredWithin < r1.Boundaries[i].RequiredWithin*(1-1e-9) {
					t.Logf("%s: boundary %d: required(%v)=%v > required(%v)=%v", comp.Name,
						i+1, a1, r1.Boundaries[i].RequiredWithin, a2, r2.Boundaries[i].RequiredWithin)
					return false
				}
			}
			if r2.TotalMemory < r1.TotalMemory*(1-1e-9) {
				t.Logf("%s: total bill not monotone: %v (α=%v) > %v (α=%v)",
					comp.Name, r1.TotalMemory, a1, r2.TotalMemory, a2)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}

// TestQuickBalancedHierarchyAnalyzesBalanced: build a hierarchy balanced by
// construction — pick capacities, then set each boundary's bandwidth to
// C/R(CapacityWithin) — and AnalyzeHierarchy must report every boundary
// balanced (and therefore the binding one, and the machine).
func TestQuickBalancedHierarchyAnalyzesBalanced(t *testing.T) {
	for _, comp := range propComputations() {
		if comp.IOBounded {
			continue // constant ratios make every boundary's BW equal; still valid
		}
		comp := comp
		prop := func(rawC uint16, rawM [4]uint16, rawDepth uint8) bool {
			depth := 1 + int(rawDepth)%4
			c := 1e6 * (1 + 999*scale01(rawC))
			h := Hierarchy{C: c}
			var cum float64
			for i := 0; i < depth; i++ {
				m := drawMOld(comp, rawM[i])
				cum += m
				r := comp.Ratio(cum)
				if r <= 0 {
					return true // below the meaningful regime
				}
				h.Levels = append(h.Levels, Level{BW: c / r, M: m})
			}
			// R is nondecreasing in the cumulative capacity, so BW = C/R is
			// non-increasing outward: Validate holds by construction.
			a, err := AnalyzeHierarchy(h, comp, DefaultPropMaxMemory)
			if err != nil {
				t.Logf("%s: %v", comp.Name, err)
				return false
			}
			for _, b := range a.Boundaries {
				if b.State != Balanced {
					t.Logf("%s: boundary %d of balanced hierarchy is %v (intensity %v vs R %v)",
						comp.Name, b.Boundary, b.State, b.Intensity, b.AchievableRatio)
					return false
				}
			}
			if a.State != Balanced {
				t.Logf("%s: overall state %v, want balanced", comp.Name, a.State)
				return false
			}
			return true
		}
		if err := quick.Check(prop, quickConfig); err != nil {
			t.Errorf("%s: %v", comp.Name, err)
		}
	}
}
