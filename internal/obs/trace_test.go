package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTracerExplicitCapture(t *testing.T) {
	tr, echo := NewTracer(TracerOptions{SampleEvery: -1}).Start("", "req-1", true)
	if tr == nil {
		t.Fatal("explicit opt-in not captured")
	}
	if !tr.WantTiming() {
		t.Fatal("explicit capture should want Server-Timing")
	}
	if _, _, flags, ok := ParseTraceparent(echo); !ok || flags&FlagSampled == 0 {
		t.Fatalf("echo %q not a sampled traceparent", echo)
	}
	if tr.TraceID != TraceIDFromRequestID("req-1") {
		t.Fatal("trace id not derived from the request id")
	}
}

func TestTracerInboundSampled(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: -1})
	in := NewTraceparent(true)
	tr, echo := tc.Start(in, "req-2", false)
	if tr == nil {
		t.Fatal("sampled inbound traceparent not captured")
	}
	if tr.WantTiming() {
		t.Fatal("header capture must not imply Server-Timing")
	}
	if !SameTrace(in, echo) {
		t.Fatalf("echo %q left the inbound trace %q", echo, in)
	}
	if echo == in {
		t.Fatal("echo reused the caller's span id")
	}
	if tr.ParentID == ([8]byte{}) {
		t.Fatal("inbound span id not recorded as parent")
	}
}

func TestTracerInboundUnsampled(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: -1})
	in := NewTraceparent(false)
	tr, echo := tc.Start(in, "req-3", false)
	if tr != nil {
		t.Fatal("unsampled inbound traceparent captured")
	}
	if !SameTrace(in, echo) {
		t.Fatalf("unsampled traceparent not passed through: %q", echo)
	}
	if _, _, flags, _ := ParseTraceparent(echo); flags&FlagSampled != 0 {
		t.Fatal("pass-through echo gained the sampled flag")
	}
}

func TestTracerHeadSampling(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 4})
	captured := 0
	for i := 0; i < 40; i++ {
		tr, _ := tc.Start("", "req", false)
		if tr != nil {
			captured++
			tc.Finish(tr, "GET /x", 200, time.Millisecond)
		}
	}
	if captured != 10 {
		t.Fatalf("captured %d of 40 at 1-in-4", captured)
	}

	// Head sampling off: no header-less request is captured.
	tc = NewTracer(TracerOptions{SampleEvery: -1})
	for i := 0; i < 40; i++ {
		if tr, echo := tc.Start("", "req", false); tr != nil || echo != "" {
			t.Fatal("captured or echoed with head sampling disabled")
		}
	}
}

func TestTracerRingAndSlowest(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 1, RingSize: 2})
	for i, d := range []time.Duration{5 * time.Millisecond, 50 * time.Millisecond, time.Millisecond} {
		tr, _ := tc.Start("", "req", true)
		if tr == nil {
			t.Fatal("not captured")
		}
		tr.Add(StageCompute, time.Now(), d/2)
		status := 200 + i
		tc.Finish(tr, "GET /x", status, d)
	}
	traces, slowest := tc.Snapshot()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(traces))
	}
	// Newest first: the 1ms trace (status 202), then the 50ms (201).
	if traces[0].Status != 202 || traces[1].Status != 201 {
		t.Fatalf("ring order: statuses %d, %d", traces[0].Status, traces[1].Status)
	}
	if slowest == nil || slowest.Status != 201 || slowest.TotalMS != 50 {
		t.Fatalf("slowest = %+v, want the 50ms trace", slowest)
	}
	if len(slowest.Spans) != 1 || slowest.Spans[0].Stage != "compute" {
		t.Fatalf("slowest spans = %+v", slowest.Spans)
	}
}

func TestTraceSpanOverflow(t *testing.T) {
	tc := NewTracer(TracerOptions{SampleEvery: 1})
	tr, _ := tc.Start("", "req", true)
	for i := 0; i < MaxSpans+3; i++ {
		tr.Add(StageCompute, time.Now(), time.Millisecond)
	}
	tc.Finish(tr, "GET /x", 200, time.Second)
	traces, _ := tc.Snapshot()
	if got := traces[0]; len(got.Spans) != MaxSpans || got.SpansDropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want %d and 3", len(got.Spans), got.SpansDropped, MaxSpans)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add(StageDecode, time.Now(), time.Second)
	if tr.WantTiming() {
		t.Fatal("nil trace wants timing")
	}
	NewTracer(TracerOptions{}).Finish(nil, "", 0, 0)
}

func TestAppendServerTiming(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr, _ := tc.Start("", "req", true)
	tr.Add(StageDecode, tr.start, 1500*time.Microsecond)
	tr.Add(StageCompute, tr.start, 250*time.Millisecond)
	got := string(tr.AppendServerTiming(nil))
	if !strings.HasPrefix(got, "decode;dur=1.500, compute;dur=250.000, total;dur=") {
		t.Fatalf("Server-Timing = %q", got)
	}
}

func TestWithTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context carries a trace")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) should be a no-op")
	}
	tr := &Trace{}
	if TraceFrom(WithTrace(ctx, tr)) != tr {
		t.Fatal("trace not carried through context")
	}
}
