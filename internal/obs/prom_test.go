package obs

import (
	"strings"
	"testing"
)

func TestPromEncSamples(t *testing.T) {
	var e PromEnc
	e.Header("x_total", "a counter", "counter")
	e.Begin("x_total")
	e.Int(3)
	e.Begin("y")
	e.Label("route", "GET /v1")
	e.Label("class", "2xx")
	e.Value(0.25)
	want := "# HELP x_total a counter\n# TYPE x_total counter\n" +
		"x_total 3\n" +
		"y{route=\"GET /v1\",class=\"2xx\"} 0.25\n"
	if got := string(e.B); got != want {
		t.Fatalf("encoded:\n%q\nwant:\n%q", got, want)
	}
}

func TestPromEncLabelEscaping(t *testing.T) {
	var e PromEnc
	e.Begin("m")
	e.Label("k", "a\\b\"c\nd")
	e.Int(1)
	want := "m{k=\"a\\\\b\\\"c\\nd\"} 1\n"
	if got := string(e.B); got != want {
		t.Fatalf("escaped = %q, want %q", got, want)
	}
}

func TestPromEncHistogram(t *testing.T) {
	var e PromEnc
	e.Histogram("h_seconds", "route", "GET /x",
		[]float64{0.0001, 0.05, 1}, []int64{2, 0, 3}, 1, 4.5)
	want := strings.Join([]string{
		`h_seconds_bucket{route="GET /x",le="0.0001"} 2`,
		`h_seconds_bucket{route="GET /x",le="0.05"} 2`,
		`h_seconds_bucket{route="GET /x",le="1"} 5`,
		`h_seconds_bucket{route="GET /x",le="+Inf"} 6`,
		`h_seconds_sum{route="GET /x"} 4.5`,
		`h_seconds_count{route="GET /x"} 6`,
	}, "\n") + "\n"
	if got := string(e.B); got != want {
		t.Fatalf("histogram:\n%s\nwant:\n%s", got, want)
	}

	// Unlabeled: no brace block beyond le.
	e = PromEnc{}
	e.Histogram("g_seconds", "", "", []float64{1}, []int64{1}, 0, 0.5)
	want = "g_seconds_bucket{le=\"1\"} 1\ng_seconds_bucket{le=\"+Inf\"} 1\n" +
		"g_seconds_sum 0.5\ng_seconds_count 1\n"
	if got := string(e.B); got != want {
		t.Fatalf("unlabeled histogram:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromEncFloats(t *testing.T) {
	var e PromEnc
	e.Begin("m")
	e.Value(1e9)
	if got := string(e.B); got != "m 1e+09\n" {
		t.Fatalf("float rendering = %q", got)
	}
}
