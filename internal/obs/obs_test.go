package obs

import (
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumStages; i++ {
		st := Stage(i)
		name := st.String()
		if name == "" {
			t.Fatalf("stage %d has no name", i)
		}
		back, ok := StageByName(name)
		if !ok || back != st {
			t.Fatalf("StageByName(%q) = %v, %v; want %v, true", name, back, ok, st)
		}
	}
	if _, ok := StageByName("no-such-stage"); ok {
		t.Fatal("StageByName accepted an unknown name")
	}
}

func TestStageSetObserve(t *testing.T) {
	s := NewStageSet([]float64{0.001, 0.01, 0.1})
	s.Observe(StageDecode, 500*time.Microsecond) // bucket 0
	s.Observe(StageDecode, 5*time.Millisecond)   // bucket 1
	s.Observe(StageDecode, 5*time.Millisecond)   // bucket 1
	s.Observe(StageDecode, time.Second)          // overflow

	snap := s.Snapshot(StageDecode)
	if want := []int64{1, 2, 0}; len(snap.Counts) != 3 ||
		snap.Counts[0] != want[0] || snap.Counts[1] != want[1] || snap.Counts[2] != want[2] {
		t.Fatalf("counts = %v, want %v", snap.Counts, want)
	}
	if snap.Over != 1 || snap.Count != 4 {
		t.Fatalf("over = %d count = %d, want 1, 4", snap.Over, snap.Count)
	}
	wantSum := 0.0005 + 0.005 + 0.005 + 1
	if diff := snap.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", snap.SumSeconds, wantSum)
	}
	if snap.MaxSeconds != 1 {
		t.Fatalf("max = %v, want 1", snap.MaxSeconds)
	}

	// Untouched stages must read as empty, and other stages must not
	// have absorbed decode's observations.
	if got := s.Snapshot(StageCompute); got.Count != 0 {
		t.Fatalf("compute count = %d, want 0", got.Count)
	}

	// Boundary: an observation exactly at a bound lands in that bound's
	// bucket (le semantics).
	s.Observe(StageEncode, time.Millisecond)
	if got := s.Snapshot(StageEncode); got.Counts[0] != 1 {
		t.Fatalf("boundary observation landed in %v", got.Counts)
	}
}

func TestStageSetNilSafe(t *testing.T) {
	var s *StageSet
	s.Observe(StageDecode, time.Second) // must not panic
}

func TestStageSetBoundsCopied(t *testing.T) {
	in := []float64{1, 2}
	s := NewStageSet(in)
	in[0] = 99
	if b := s.Bounds(); b[0] != 1 {
		t.Fatalf("bounds aliased the caller's slice: %v", b)
	}
	b := s.Bounds()
	b[1] = 99
	if s.Bounds()[1] != 2 {
		t.Fatal("Bounds returned an aliased slice")
	}
}
