// W3C trace-context: parsing and emitting the traceparent header
// (https://www.w3.org/TR/trace-context/), allocation-free in both
// directions, plus the service's trace/span id generation.

package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// TraceparentHeader is the canonical header name, usable directly with
// http.Header's Get/Set.
const TraceparentHeader = "Traceparent"

// FlagSampled is the trace-flags bit meaning "the caller recorded this
// trace": requests arriving with it set are always captured.
const FlagSampled = 0x01

// traceparentLen is the version-00 header length:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

// ParseTraceparent parses a traceparent header value. ok is false for
// anything malformed: wrong separators, uppercase or non-hex digits,
// all-zero ids, the forbidden version ff, or a version-00 value with
// trailing bytes. Higher versions are accepted when their extra fields
// are '-'-separated, per the spec's forward-compatibility rule.
func ParseTraceparent(h string) (traceID [16]byte, spanID [8]byte, flags byte, ok bool) {
	if len(h) < traceparentLen {
		return traceID, spanID, 0, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, spanID, 0, false
	}
	ver, vok := hexByte(h[0], h[1])
	if !vok || ver == 0xff {
		return traceID, spanID, 0, false
	}
	if len(h) > traceparentLen && (ver == 0 || h[traceparentLen] != '-') {
		return traceID, spanID, 0, false
	}
	var zero bool
	zero = true
	for i := 0; i < 16; i++ {
		b, bok := hexByte(h[3+2*i], h[4+2*i])
		if !bok {
			return traceID, spanID, 0, false
		}
		traceID[i] = b
		zero = zero && b == 0
	}
	if zero {
		return traceID, spanID, 0, false
	}
	zero = true
	for i := 0; i < 8; i++ {
		b, bok := hexByte(h[36+2*i], h[37+2*i])
		if !bok {
			return traceID, spanID, 0, false
		}
		spanID[i] = b
		zero = zero && b == 0
	}
	if zero {
		return traceID, spanID, 0, false
	}
	flags, fok := hexByte(h[53], h[54])
	if !fok {
		return traceID, spanID, 0, false
	}
	return traceID, spanID, flags, true
}

// hexByte decodes two lowercase hex digits. Uppercase is rejected: the
// spec defines the header as lowercase and reserves uppercase forms.
func hexByte(hi, lo byte) (byte, bool) {
	h, hok := hexNibble(hi)
	l, lok := hexNibble(lo)
	return h<<4 | l, hok && lok
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

const hexDigits = "0123456789abcdef"

// AppendTraceparent appends a version-00 traceparent value to dst.
func AppendTraceparent(dst []byte, traceID [16]byte, spanID [8]byte, flags byte) []byte {
	dst = append(dst, '0', '0', '-')
	dst = appendHex(dst, traceID[:])
	dst = append(dst, '-')
	dst = appendHex(dst, spanID[:])
	dst = append(dst, '-')
	dst = append(dst, hexDigits[flags>>4], hexDigits[flags&0xf])
	return dst
}

func appendHex(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// idSeed is process randomness for id generation, drawn once: ids only
// need to be unique, and a counter mixed with a random seed is cheaper
// per id than a rand read.
var idSeed = func() [2]uint64 {
	var b [16]byte
	_, _ = rand.Read(b[:]) // stdlib crypto/rand never fails on supported platforms
	return [2]uint64{
		binary.LittleEndian.Uint64(b[0:8]) | 1,
		binary.LittleEndian.Uint64(b[8:16]) | 1,
	}
}()

var idSeq atomic.Uint64

// NewSpanID returns a fresh non-zero span id.
func NewSpanID() [8]byte {
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], mix(idSeq.Add(1))^idSeed[0])
	if id == ([8]byte{}) {
		id[7] = 1
	}
	return id
}

// NewTraceID returns a fresh non-zero trace id.
func NewTraceID() [16]byte {
	var id [16]byte
	n := idSeq.Add(1)
	binary.BigEndian.PutUint64(id[0:8], mix(n)^idSeed[0])
	binary.BigEndian.PutUint64(id[8:16], mix(n^0x9e3779b97f4a7c15)^idSeed[1])
	if id == ([16]byte{}) {
		id[15] = 1
	}
	return id
}

// mix is splitmix64's finalizer: a counter in, well-spread bits out.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// TraceIDFromRequestID derives a stable non-zero trace id from a request
// id, so a request that arrives without a traceparent still gets a trace
// id an operator can correlate with the X-Request-Id in logs: same
// request id, same trace id. FNV-1a over the string, two bases.
func TraceIDFromRequestID(requestID string) [16]byte {
	var id [16]byte
	binary.BigEndian.PutUint64(id[0:8], fnv1a(requestID, 0xcbf29ce484222325))
	binary.BigEndian.PutUint64(id[8:16], fnv1a(requestID, 0x84222325cbf29ce4))
	if id == ([16]byte{}) {
		id[15] = 1
	}
	return id
}

func fnv1a(s string, basis uint64) uint64 {
	h := basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// NewTraceparent returns a fresh version-00 traceparent header value —
// what a client sends to start a trace. sampled sets the recorded flag,
// asking the server to capture the request.
func NewTraceparent(sampled bool) string {
	var flags byte
	if sampled {
		flags = FlagSampled
	}
	var b [traceparentLen]byte
	return string(AppendTraceparent(b[:0], NewTraceID(), NewSpanID(), flags))
}

// SameTrace reports whether two traceparent values carry the same trace
// id — how a client checks the server echoed its trace.
func SameTrace(a, b string) bool {
	return len(a) >= 35 && len(b) >= 35 && a[3:35] == b[3:35]
}
