// Package obs is the observability layer of balance-as-a-service:
// request-scoped traces with fixed-capacity span buffers, W3C
// trace-context propagation, an always-on per-stage latency registry,
// and an append-style Prometheus text encoder. Everything is stdlib-only
// and allocation-disciplined — the tracing fast path (an untraced
// request) costs a context probe and a few clock reads, and a traced
// request reuses sync.Pool-backed records, so the server's
// zero-allocation floor survives with tracing enabled.
//
// The package deliberately knows nothing about HTTP handlers, job
// queues, or stores: those layers feed it through narrow hooks (a
// func(stage, duration) here, a context value there), in the same
// spirit the paper decomposes a computation into stages whose balance
// is measured separately — aggregate latency says a request was slow,
// the stage profile says where.
package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// Stage names one pipeline stage of a request's life. The sync path is
// decode → (cache_lookup) → compute → encode; the async job path is
// admit → wal_append → queued → sched_pick → run → store_put → publish.
type Stage uint8

const (
	StageDecode Stage = iota
	StageCacheLookup
	StageCompute
	StageEncode
	StageAdmit
	StageWALAppend
	StageQueued
	StageSchedPick
	StageRun
	StageStorePut
	StagePublish
	numStages
)

// NumStages is how many stages exist; Stage values are 0..NumStages-1.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"decode", "cache_lookup", "compute", "encode",
	"admit", "wal_append", "queued", "sched_pick", "run",
	"store_put", "publish",
}

// String returns the stage's wire name (the Server-Timing metric name
// and the Prometheus stage label).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// StageByName resolves a wire name back to its Stage — the bridge for
// hooks that deliver stage names as strings to stay import-light.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// StageSet is the always-on per-stage latency registry: one lock-free
// histogram per Stage, sharing the server's latency bucket bounds so
// stage costs and route latencies read on the same scale. All methods
// are safe for concurrent use; Observe is a handful of atomic adds.
type StageSet struct {
	bounds     []float64 // upper bounds, seconds, ascending
	boundNanos []int64   // the same bounds in nanoseconds, precomputed
	hists      [NumStages]stageHist
}

// stageHist is one stage's histogram: counts[i] is bucket i (≤
// bounds[i]), over counts beyond the last bound. Sums and maxima are
// kept in nanoseconds so Observe never touches floating point.
type stageHist struct {
	counts []atomic.Int64
	over   atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewStageSet builds a registry on the given ascending bucket bounds
// (seconds). The bounds slice is copied.
func NewStageSet(bounds []float64) *StageSet {
	s := &StageSet{
		bounds:     append([]float64(nil), bounds...),
		boundNanos: make([]int64, len(bounds)),
	}
	for i, b := range bounds {
		s.boundNanos[i] = int64(b * float64(time.Second))
	}
	for i := range s.hists {
		s.hists[i].counts = make([]atomic.Int64, len(bounds))
	}
	return s
}

// Bounds returns a copy of the bucket upper bounds, in seconds.
func (s *StageSet) Bounds() []float64 {
	return append([]float64(nil), s.bounds...)
}

// Observe records one stage duration. Nil-safe so callers need no guard.
func (s *StageSet) Observe(st Stage, d time.Duration) {
	if s == nil || int(st) >= NumStages {
		return
	}
	h := &s.hists[st]
	n := int64(d)
	if n < 0 {
		n = 0
	}
	placed := false
	for i, bound := range s.boundNanos {
		if n <= bound {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.over.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(n)
	for {
		old := h.max.Load()
		if n <= old || h.max.CompareAndSwap(old, n) {
			break
		}
	}
}

// StageSnapshot is one stage's histogram at a point in time. Counts has
// one entry per bound; Over counts observations beyond the last bound.
type StageSnapshot struct {
	Counts     []int64
	Over       int64
	Count      int64
	SumSeconds float64
	MaxSeconds float64
}

// Snapshot copies one stage's histogram. The loads are not mutually
// atomic — a concurrent Observe can make Count lead the buckets by one
// — which is the usual (and harmless) scrape-time skew.
func (s *StageSet) Snapshot(st Stage) StageSnapshot {
	h := &s.hists[st]
	snap := StageSnapshot{
		Counts:     make([]int64, len(h.counts)),
		Over:       h.over.Load(),
		Count:      h.count.Load(),
		SumSeconds: float64(h.sum.Load()) / float64(time.Second),
		MaxSeconds: float64(h.max.Load()) / float64(time.Second),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
	}
	return snap
}
