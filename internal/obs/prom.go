// An append-style Prometheus text-format (version 0.0.4) encoder. The
// encoder is a state machine over a caller-owned byte slice: Begin a
// sample, add Labels, close it with a Value — no intermediate strings,
// no fmt, so rendering an exposition reuses one pooled buffer.

package obs

import (
	"math"
	"strconv"
)

// PromContentType is the exposition's Content-Type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromEnc encodes Prometheus text format into B by appending.
type PromEnc struct {
	B        []byte
	inLabels bool
}

// Header writes the # HELP and # TYPE comment pair for a metric family.
// typ is one of "counter", "gauge", "histogram".
func (e *PromEnc) Header(name, help, typ string) {
	e.B = append(e.B, "# HELP "...)
	e.B = append(e.B, name...)
	e.B = append(e.B, ' ')
	e.B = append(e.B, help...)
	e.B = append(e.B, "\n# TYPE "...)
	e.B = append(e.B, name...)
	e.B = append(e.B, ' ')
	e.B = append(e.B, typ...)
	e.B = append(e.B, '\n')
}

// Begin opens one sample line for the named metric.
func (e *PromEnc) Begin(name string) {
	e.B = append(e.B, name...)
	e.inLabels = false
}

// Label adds one label to the open sample, escaping the value
// (backslash, double quote, newline) per the text-format rules.
func (e *PromEnc) Label(key, value string) {
	if e.inLabels {
		e.B = append(e.B, ',')
	} else {
		e.B = append(e.B, '{')
		e.inLabels = true
	}
	e.B = append(e.B, key...)
	e.B = append(e.B, '=', '"')
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			e.B = append(e.B, '\\', '\\')
		case '"':
			e.B = append(e.B, '\\', '"')
		case '\n':
			e.B = append(e.B, '\\', 'n')
		default:
			e.B = append(e.B, c)
		}
	}
	e.B = append(e.B, '"')
}

// LabelFloat adds one label whose value is a rendered float — the le
// bound of a histogram bucket — without an intermediate string.
func (e *PromEnc) LabelFloat(key string, v float64) {
	if e.inLabels {
		e.B = append(e.B, ',')
	} else {
		e.B = append(e.B, '{')
		e.inLabels = true
	}
	e.B = append(e.B, key...)
	e.B = append(e.B, '=', '"')
	e.B = appendPromFloat(e.B, v)
	e.B = append(e.B, '"')
}

// Value closes the open sample with its value.
func (e *PromEnc) Value(v float64) {
	if e.inLabels {
		e.B = append(e.B, '}')
		e.inLabels = false
	}
	e.B = append(e.B, ' ')
	e.B = appendPromFloat(e.B, v)
	e.B = append(e.B, '\n')
}

// Int closes the open sample with an integer value.
func (e *PromEnc) Int(v int64) {
	if e.inLabels {
		e.B = append(e.B, '}')
		e.inLabels = false
	}
	e.B = append(e.B, ' ')
	e.B = strconv.AppendInt(e.B, v, 10)
	e.B = append(e.B, '\n')
}

func appendPromFloat(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// Histogram writes one histogram series: cumulative buckets over the
// given upper bounds (counts[i] observations at or under bounds[i], over
// beyond the last bound), the +Inf bucket, _sum, and _count. labelKey
// may be "" for an unlabeled series; otherwise every sample carries
// {labelKey="labelValue"}.
func (e *PromEnc) Histogram(name, labelKey, labelValue string, bounds []float64, counts []int64, over int64, sum float64) {
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		e.beginSuffixed(name, "_bucket")
		if labelKey != "" {
			e.Label(labelKey, labelValue)
		}
		e.LabelFloat("le", bound)
		e.Int(cum)
	}
	cum += over
	e.beginSuffixed(name, "_bucket")
	if labelKey != "" {
		e.Label(labelKey, labelValue)
	}
	e.Label("le", "+Inf")
	e.Int(cum)
	e.beginSuffixed(name, "_sum")
	if labelKey != "" {
		e.Label(labelKey, labelValue)
	}
	e.Value(sum)
	e.beginSuffixed(name, "_count")
	if labelKey != "" {
		e.Label(labelKey, labelValue)
	}
	e.Int(cum)
}

// beginSuffixed opens a sample line for name+suffix without building the
// concatenated string.
func (e *PromEnc) beginSuffixed(name, suffix string) {
	e.B = append(e.B, name...)
	e.B = append(e.B, suffix...)
	e.inLabels = false
}
