package obs

import (
	"strings"
	"testing"
)

const validTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparentValid(t *testing.T) {
	tid, sid, flags, ok := ParseTraceparent(validTP)
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if flags != 0x01 {
		t.Fatalf("flags = %#x, want 0x01", flags)
	}
	round := string(AppendTraceparent(nil, tid, sid, flags))
	if round != validTP {
		t.Fatalf("round trip = %q, want %q", round, validTP)
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// A higher version may carry extra '-'-separated fields; the 00
	// prefix fields must still parse.
	v := "cc" + validTP[2:] + "-extra"
	if _, _, _, ok := ParseTraceparent(v); !ok {
		t.Fatalf("future-version traceparent rejected: %q", v)
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	cases := []string{
		"",
		"00",
		validTP[:54],             // truncated
		validTP + "x",            // version 00 with trailing bytes
		"ff" + validTP[2:],       // forbidden version
		strings.ToUpper(validTP), // uppercase hex is invalid
		strings.Replace(validTP, "-", "_", 1),
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // non-hex flags
	}
	for _, c := range cases {
		if _, _, _, ok := ParseTraceparent(c); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", c)
		}
	}
}

func TestNewTraceparent(t *testing.T) {
	tp := NewTraceparent(true)
	tid, _, flags, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("NewTraceparent emitted unparsable %q", tp)
	}
	if flags&FlagSampled == 0 {
		t.Fatalf("sampled traceparent has flags %#x", flags)
	}
	if tid == ([16]byte{}) {
		t.Fatal("zero trace id")
	}
	if _, _, flags, _ := ParseTraceparent(NewTraceparent(false)); flags&FlagSampled != 0 {
		t.Fatalf("unsampled traceparent has the sampled flag")
	}
	if NewTraceparent(true) == tp {
		t.Fatal("two generated traceparents collided")
	}
}

func TestSameTrace(t *testing.T) {
	a := NewTraceparent(true)
	// Same trace id, different span id.
	tid, _, flags, _ := ParseTraceparent(a)
	b := string(AppendTraceparent(nil, tid, NewSpanID(), flags))
	if !SameTrace(a, b) {
		t.Fatalf("SameTrace(%q, %q) = false", a, b)
	}
	if SameTrace(a, NewTraceparent(true)) {
		t.Fatal("distinct traces reported as same")
	}
	if SameTrace(a, "") || SameTrace("", "") {
		t.Fatal("SameTrace on short input")
	}
}

func TestTraceIDFromRequestID(t *testing.T) {
	a := TraceIDFromRequestID("balarch-1")
	if a != TraceIDFromRequestID("balarch-1") {
		t.Fatal("trace id from request id is not stable")
	}
	if a == TraceIDFromRequestID("balarch-2") {
		t.Fatal("distinct request ids collided")
	}
	if TraceIDFromRequestID("") == ([16]byte{}) {
		t.Fatal("zero trace id")
	}
}

// FuzzTraceparent: the inbound parser never panics, and anything it
// accepts is internally consistent — non-zero ids and, for a canonical
// version-00 value, an exact byte round trip through the emitter.
func FuzzTraceparent(f *testing.F) {
	f.Add(validTP)
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("cc" + validTP[2:] + "-tail")
	f.Add(strings.ToUpper(validTP))
	f.Add("")
	f.Fuzz(func(t *testing.T, h string) {
		tid, sid, flags, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		if tid == ([16]byte{}) || sid == ([8]byte{}) {
			t.Fatalf("accepted zero id in %q", h)
		}
		if len(h) == traceparentLen && h[0] == '0' && h[1] == '0' {
			if round := string(AppendTraceparent(nil, tid, sid, flags)); round != h {
				t.Fatalf("canonical round trip %q != %q", round, h)
			}
		}
	})
}
