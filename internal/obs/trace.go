// Request traces: pooled fixed-capacity span records, the sampling
// decision, and the completed-trace ring with always-keep-slowest.

package obs

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds one trace's span buffer. A sync request records ≤ 4
// stages and a job's submit path a few more; the fixed array is what
// keeps a traced request allocation-free after pool warm-up. Overflow
// is counted, not grown.
const MaxSpans = 16

// Span is one completed stage inside a trace. Start is the offset from
// the trace's own start, so spans order and nest without wall-clock.
type Span struct {
	Stage Stage
	Start time.Duration
	Dur   time.Duration
}

// Trace is one captured request. Records are pooled: handlers receive a
// *Trace through the request context, add spans from the handler
// goroutine only, and the middleware hands the record back to the
// Tracer at request end. All methods are nil-safe, so untraced paths
// call them unconditionally.
type Trace struct {
	TraceID  [16]byte
	SpanID   [8]byte
	ParentID [8]byte // inbound caller's span id; zero when the trace starts here
	Flags    byte
	remote   bool // an inbound traceparent named the trace
	timing   bool // trace=1: the response wants a Server-Timing header

	start     time.Time
	route     string
	status    int
	requestID string
	total     time.Duration

	n       int
	dropped int
	spans   [MaxSpans]Span
}

func (t *Trace) reset() {
	*t = Trace{}
}

// Add records one completed span: a stage that began at t0 and took d.
func (t *Trace) Add(st Stage, t0 time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if t.n >= len(t.spans) {
		t.dropped++
		return
	}
	t.spans[t.n] = Span{Stage: st, Start: t0.Sub(t.start), Dur: d}
	t.n++
}

// WantTiming reports whether the request opted into a Server-Timing
// response header (trace=1).
func (t *Trace) WantTiming() bool {
	return t != nil && t.timing
}

// AppendServerTiming appends the trace's spans so far as a Server-Timing
// header value — "decode;dur=0.041, compute;dur=1.2, total;dur=1.3",
// durations in milliseconds. It is called just before the response
// status line is written, so spans recorded after headers are flushed
// (the encode stage) appear only in /debug/traces.
func (t *Trace) AppendServerTiming(dst []byte) []byte {
	for i := 0; i < t.n; i++ {
		sp := &t.spans[i]
		dst = append(dst, sp.Stage.String()...)
		dst = append(dst, ";dur="...)
		dst = appendMillis(dst, sp.Dur)
		dst = append(dst, ',', ' ')
	}
	dst = append(dst, "total;dur="...)
	dst = appendMillis(dst, time.Since(t.start))
	return dst
}

func appendMillis(dst []byte, d time.Duration) []byte {
	return strconv.AppendFloat(dst, float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// traceKey carries a *Trace through a request context.
type traceKey struct{}

// WithTrace returns a context carrying tr. A nil tr returns ctx
// unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFrom returns the context's trace, or nil — the normal case, and
// why every Trace method is nil-safe.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TracerOptions tunes a Tracer. The zero value is production-ready.
type TracerOptions struct {
	// SampleEvery head-samples requests that arrive without a
	// traceparent: one in every N is captured. 0 means the default
	// (128); negative disables head sampling — only requests carrying a
	// sampled traceparent or the trace=1 opt-in are captured.
	SampleEvery int
	// RingSize is how many completed traces are retained for
	// /debug/traces (the slowest-ever is held separately). 0 means 64.
	RingSize int
}

const (
	defaultSampleEvery = 128
	defaultRingSize    = 64
)

// Tracer decides which requests to capture, pools trace records, and
// retains completed traces in a ring plus a dedicated slowest-ever
// slot. All methods are safe for concurrent use; the ring's mutex is
// touched once per completed *captured* request, never on the untraced
// path.
type Tracer struct {
	sampleEvery uint64 // 0 = head sampling off
	seq         atomic.Uint64
	pool        sync.Pool

	mu         sync.Mutex
	ring       []*Trace
	next       int
	filled     bool
	slowest    Trace // copy of the slowest trace seen, never pooled
	hasSlowest bool
}

// NewTracer builds a Tracer.
func NewTracer(opts TracerOptions) *Tracer {
	every := opts.SampleEvery
	if every == 0 {
		every = defaultSampleEvery
	}
	if every < 0 {
		every = 0
	}
	size := opts.RingSize
	if size <= 0 {
		size = defaultRingSize
	}
	return &Tracer{
		sampleEvery: uint64(every),
		pool:        sync.Pool{New: func() any { return new(Trace) }},
		ring:        make([]*Trace, size),
	}
}

// Start makes the capture decision for one request and returns the
// trace record (nil when the request is not captured) plus the
// traceparent value to echo on the response ("" when the request
// neither carried a valid traceparent nor was captured, so the
// header-less fast path stays allocation-free).
//
// Capture rules: an inbound traceparent with the sampled flag, or the
// explicit trace=1 opt-in, always captures; a request without a
// traceparent is head-sampled 1-in-SampleEvery; an inbound traceparent
// with the flag clear is honored — echoed, not captured (unless
// explicit). The trace id comes from the inbound header when present,
// else is derived from the request id.
func (t *Tracer) Start(traceparent, requestID string, explicit bool) (tr *Trace, echo string) {
	tid, parent, flags, ok := ParseTraceparent(traceparent)
	capture := explicit || (ok && flags&FlagSampled != 0)
	if !capture && !ok && t.sampleEvery > 0 {
		capture = t.seq.Add(1)%t.sampleEvery == 0
	}
	if !capture {
		if ok {
			// Pass-through: same trace, our span id, flags as they came.
			var b [traceparentLen]byte
			echo = string(AppendTraceparent(b[:0], tid, NewSpanID(), flags))
		}
		return nil, echo
	}
	tr = t.pool.Get().(*Trace)
	tr.reset()
	if ok {
		tr.TraceID, tr.ParentID, tr.remote = tid, parent, true
	} else {
		tr.TraceID = TraceIDFromRequestID(requestID)
	}
	tr.SpanID = NewSpanID()
	tr.Flags = flags | FlagSampled
	tr.timing = explicit
	tr.requestID = requestID
	tr.start = time.Now()
	var b [traceparentLen]byte
	echo = string(AppendTraceparent(b[:0], tr.TraceID, tr.SpanID, tr.Flags))
	return tr, echo
}

// Finish completes a captured trace and files it: into the ring
// (evicting — and pooling — the oldest) and, if it is the slowest seen,
// into the dedicated slowest slot by copy. Nil-safe.
func (t *Tracer) Finish(tr *Trace, route string, status int, total time.Duration) {
	if tr == nil {
		return
	}
	tr.route, tr.status, tr.total = route, status, total
	t.mu.Lock()
	if !t.hasSlowest || total > t.slowest.total {
		t.slowest = *tr
		t.hasSlowest = true
	}
	evicted := t.ring[t.next]
	t.ring[t.next] = tr
	t.next++
	if t.next == len(t.ring) {
		t.next, t.filled = 0, true
	}
	t.mu.Unlock()
	if evicted != nil {
		t.pool.Put(evicted)
	}
}

// SpanView is one span of a TraceView.
type SpanView struct {
	Stage   string  `json:"stage"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"duration_ms"`
}

// TraceView is the JSON shape of one completed trace, served by
// GET /debug/traces.
type TraceView struct {
	TraceID       string     `json:"trace_id"`
	SpanID        string     `json:"span_id"`
	ParentSpanID  string     `json:"parent_span_id,omitempty"`
	Remote        bool       `json:"remote,omitempty"`
	Route         string     `json:"route"`
	Status        int        `json:"status"`
	RequestID     string     `json:"request_id,omitempty"`
	StartUnixNano int64      `json:"start_unix_nano"`
	TotalMS       float64    `json:"total_ms"`
	Spans         []SpanView `json:"spans"`
	SpansDropped  int        `json:"spans_dropped,omitempty"`
}

func (tr *Trace) view() TraceView {
	var tb [32]byte
	var sb [16]byte
	v := TraceView{
		TraceID:       string(appendHex(tb[:0], tr.TraceID[:])),
		SpanID:        string(appendHex(sb[:0], tr.SpanID[:])),
		Remote:        tr.remote,
		Route:         tr.route,
		Status:        tr.status,
		RequestID:     tr.requestID,
		StartUnixNano: tr.start.UnixNano(),
		TotalMS:       float64(tr.total) / float64(time.Millisecond),
		Spans:         make([]SpanView, tr.n),
		SpansDropped:  tr.dropped,
	}
	if tr.ParentID != ([8]byte{}) {
		v.ParentSpanID = string(appendHex(sb[:0], tr.ParentID[:]))
	}
	for i := 0; i < tr.n; i++ {
		sp := &tr.spans[i]
		v.Spans[i] = SpanView{
			Stage:   sp.Stage.String(),
			StartMS: float64(sp.Start) / float64(time.Millisecond),
			DurMS:   float64(sp.Dur) / float64(time.Millisecond),
		}
	}
	return v
}

// Snapshot renders the retained traces, newest first, plus the
// slowest-ever trace (nil when nothing has completed). The views are
// deep copies: serving them races with nothing.
func (t *Tracer) Snapshot() (traces []TraceView, slowest *TraceView) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = len(t.ring)
	}
	traces = make([]TraceView, 0, n)
	for i := 1; i <= len(t.ring); i++ {
		// Walk backwards from the most recently written slot.
		tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if tr == nil {
			break
		}
		traces = append(traces, tr.view())
	}
	if t.hasSlowest {
		v := t.slowest.view()
		slowest = &v
	}
	return traces, slowest
}
