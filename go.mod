module balarch

go 1.24
