#!/bin/sh
# Soak test for balance-as-a-service, in two phases against one fresh
# balarchd:
#
#   1. Calibration: a serial (1-worker) mixed-production pass with
#      -crosscheck — below saturation, client-side quantiles must agree
#      with the server's /metrics histograms within one bucket, proving
#      the load generator's numbers can be trusted. (Under saturation the
#      two sides genuinely measure different things: queueing ahead of the
#      server's measurement window lands only in the client's histogram.)
#   2. Soak: SOAK_WORKERS closed-loop workers drive mixed-production for
#      SOAK_DURATION, gated on zero unexpected non-2xx, every route's
#      p99 at or under SOAK_MAX_P99, GC pressure (GCs per 1k
#      requests in the load-generator process) within 20% of the
#      recorded baseline in ci/soak-gc-baseline.txt — the soak-level
#      guard against allocation regressions in the request path — and
#      trace coverage: every request carries a W3C traceparent and at
#      least SOAK_MIN_TRACE_COVERAGE of them must get the trace id
#      echoed back, proving propagation survives the full middleware
#      chain under sustained load.
#   3. Job queue: an async phase against the same daemon's durable
#      /v1/jobs surface (the daemon runs with -store-dir), gated on zero
#      unexpected responses AND zero lost jobs — after the run the queue
#      must drain (queued+running → 0) with jobs_failed = 0.
#   4. Hierarchy mix: the multi-level machine surface (hierarchy analyze,
#      rebalance, multi-ridge roofline, analytic level sweeps, catalog),
#      gated like phase 2 on zero unexpected non-2xx and the p99 ceiling.
#   5. Noisy neighbor: tenancy isolation. The daemon runs with
#      -tenants-file (the noisy tenant on a tight token bucket and job
#      budget, the victim unthrottled; anonymous traffic — phases 1–4 —
#      stays unlimited, so their behavior is unchanged). The
#      noisy-neighbor scenario floods as the noisy tenant (429s expected)
#      while the victim tenant's routes are gated on p99 at or under
#      SOAK_VICTIM_MAX_P99 and zero unexpected responses — an abusive
#      tenant's refusals must not become the victim's latency.
#   6. Backlog fairness: the scheduler gate. The bulk tenant piles a
#      ~10:1 job backlog against the minority tenant; after the run the
#      queue must drain with zero failures, jobs_sched_max_wait_picks
#      must stay within the weighted round-robin bound, the minority
#      tenant must have been served, and the minority's routes are gated
#      on the (ceiling-rank) p99 ceiling — a deep backlog must not
#      become the small tenant's starvation or latency.
#   7. Cluster kill drill: three fresh nodes behind balarchgw drive the
#      cluster-mix scenario through the gateway. A third of the way in,
#      one node is SIGKILLed (a crash, not a drain) and later restarted
#      on its same store dir — the gateway must eject it on the first
#      transport error and rejoin it by probe, while WAL replay requeues
#      the jobs the crash stranded. Gates: zero unexpected non-2xx
#      through the kill, the p99 ceiling, and the same zero-lost-jobs
#      drain gate as phase 3 read from the gateway's cluster rollup —
#      queued+running across the cluster must reach 0 with no failures,
#      so a job swallowed by the crash would fail the drill.
#
# JSON reports land in SOAK_CALIBRATION_REPORT, SOAK_REPORT,
# SOAK_JOBS_REPORT, SOAK_HIERARCHY_REPORT, SOAK_NOISY_REPORT, and
# SOAK_FAIRNESS_REPORT for upload as CI artifacts; the slowest request
# trace the daemon captured across all phases is archived from
# /debug/traces (the operator listener) as SOAK_TRACE_REPORT.
# Runs on every PR; also runnable locally: ./ci/soak.sh
set -eu

PORT="${SOAK_PORT:-18081}"
BASE="http://127.0.0.1:$PORT"
DURATION="${SOAK_DURATION:-25s}"
WORKERS="${SOAK_WORKERS:-8}"
SEED="${SOAK_SEED:-1}"
MAX_P99="${SOAK_MAX_P99:-5s}"
REPORT="${SOAK_REPORT:-soak-report.json}"
CALIB_REPORT="${SOAK_CALIBRATION_REPORT:-soak-calibration.json}"
JOBS_REPORT="${SOAK_JOBS_REPORT:-soak-jobqueue.json}"
JOBS_REQUESTS="${SOAK_JOBS_REQUESTS:-300}"
JOBS_DRAIN="${SOAK_JOBS_DRAIN:-60s}"
HIER_REPORT="${SOAK_HIERARCHY_REPORT:-soak-hierarchy.json}"
HIER_REQUESTS="${SOAK_HIERARCHY_REQUESTS:-400}"
NOISY_REPORT="${SOAK_NOISY_REPORT:-soak-noisy.json}"
NOISY_REQUESTS="${SOAK_NOISY_REQUESTS:-800}"
VICTIM_MAX_P99="${SOAK_VICTIM_MAX_P99:-$MAX_P99}"
FAIR_REPORT="${SOAK_FAIRNESS_REPORT:-soak-fairness.json}"
FAIR_REQUESTS="${SOAK_FAIRNESS_REQUESTS:-400}"
FAIR_DRAIN="${SOAK_FAIRNESS_DRAIN:-90s}"
MIN_TRACE_COVERAGE="${SOAK_MIN_TRACE_COVERAGE:-0.99}"
TRACE_REPORT="${SOAK_TRACE_REPORT:-soak-slowest-trace.json}"
CLUSTER_REPORT="${SOAK_CLUSTER_REPORT:-soak-cluster.json}"
CLUSTER_DURATION="${SOAK_CLUSTER_DURATION:-20s}"
CLUSTER_KILL_AFTER="${SOAK_CLUSTER_KILL_AFTER:-6}"
CLUSTER_RESTART_AFTER="${SOAK_CLUSTER_RESTART_AFTER:-5}"
PPROF_PORT=$((PORT + 1))
# GCs per 1k requests recorded for phase 2 (see ci/soak-gc-baseline.txt);
# override with SOAK_GC_BASELINE, 0 disables the gate.
GC_BASELINE="${SOAK_GC_BASELINE:-$(cat ci/soak-gc-baseline.txt)}"
DIR="$(mktemp -d)"

echo "soak: building balarchd, balarchgw, and balarchload"
go build -o "$DIR/balarchd" ./cmd/balarchd
go build -o "$DIR/balarchgw" ./cmd/balarchgw
go build -o "$DIR/balarchload" ./cmd/balarchload

# The tenant sets phases 5 and 6 assume (keys match loadgen's
# noisy-neighbor and backlog-fairness scenarios; see
# loadgen.NoisyNeighborTenants and loadgen.FairnessTenants). Anonymous
# traffic stays unlimited, so the untenanted phases 1-4 behave exactly
# as before.
cat > "$DIR/tenants.json" <<'EOF'
{
  "tenants": [
    {"name": "noisy", "key": "soak-noisy-key", "rate_per_sec": 50, "burst": 100, "job_budget_bytes": 262144},
    {"name": "victim", "key": "soak-victim-key"},
    {"name": "bulk", "key": "soak-bulk-key", "job_budget_bytes": 67108864, "weight": 2},
    {"name": "minority", "key": "soak-minority-key", "job_budget_bytes": 16777216}
  ]
}
EOF

# -pprof-addr also mounts /debug/traces, which the artifact step curls.
"$DIR/balarchd" -addr "127.0.0.1:$PORT" -quiet -store-dir "$DIR/store" -tenants-file "$DIR/tenants.json" -pprof-addr "127.0.0.1:$PPROF_PORT" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
# No readiness sleep needed: balarchload's health preflight polls /healthz
# for -wait (default 5s) before driving load.

echo "soak: phase 1 — serial calibration with /metrics cross-check"
code=0
"$DIR/balarchload" \
  -url "$BASE" \
  -scenario mixed-production \
  -requests 600 \
  -workers 1 \
  -seed "$SEED" \
  -crosscheck \
  -json > "$CALIB_REPORT" || code=$?
if [ "$code" -ne 0 ]; then
  echo "soak: calibration failed (exit $code); report:" >&2
  cat "$CALIB_REPORT" >&2
  exit "$code"
fi

echo "soak: phase 2 — $WORKERS workers, mixed-production for $DURATION"
"$DIR/balarchload" \
  -url "$BASE" \
  -scenario mixed-production \
  -duration "$DURATION" \
  -workers "$WORKERS" \
  -seed "$SEED" \
  -max-p99 "$MAX_P99" \
  -gc-baseline-per1k "$GC_BASELINE" \
  -min-trace-coverage "$MIN_TRACE_COVERAGE" \
  -json > "$REPORT" || code=$?

echo "soak: report ($REPORT):"
cat "$REPORT"

if [ "$code" -eq 0 ]; then
  echo "soak: phase 3 — job-queue for $JOBS_REQUESTS requests, drain gate $JOBS_DRAIN"
  "$DIR/balarchload" \
    -url "$BASE" \
    -scenario job-queue \
    -requests "$JOBS_REQUESTS" \
    -workers 4 \
    -seed "$SEED" \
    -jobs-drain "$JOBS_DRAIN" \
    -json > "$JOBS_REPORT" || code=$?
  echo "soak: job-queue report ($JOBS_REPORT):"
  cat "$JOBS_REPORT"
fi

if [ "$code" -eq 0 ]; then
  echo "soak: phase 4 — hierarchy-mix for $HIER_REQUESTS requests"
  "$DIR/balarchload" \
    -url "$BASE" \
    -scenario hierarchy-mix \
    -requests "$HIER_REQUESTS" \
    -workers 4 \
    -seed "$SEED" \
    -max-p99 "$MAX_P99" \
    -json > "$HIER_REPORT" || code=$?
  echo "soak: hierarchy report ($HIER_REPORT):"
  cat "$HIER_REPORT"
fi

if [ "$code" -eq 0 ]; then
  echo "soak: phase 5 — noisy-neighbor for $NOISY_REQUESTS requests, victim p99 gate $VICTIM_MAX_P99"
  "$DIR/balarchload" \
    -url "$BASE" \
    -scenario noisy-neighbor \
    -requests "$NOISY_REQUESTS" \
    -workers "$WORKERS" \
    -seed "$SEED" \
    -victim-max-p99 "$VICTIM_MAX_P99" \
    -json > "$NOISY_REPORT" || code=$?
  echo "soak: noisy-neighbor report ($NOISY_REPORT):"
  cat "$NOISY_REPORT"
fi

if [ "$code" -eq 0 ]; then
  echo "soak: phase 6 — backlog-fairness for $FAIR_REQUESTS requests, drain gate $FAIR_DRAIN, minority p99 gate $VICTIM_MAX_P99"
  "$DIR/balarchload" \
    -url "$BASE" \
    -scenario backlog-fairness \
    -requests "$FAIR_REQUESTS" \
    -workers "$WORKERS" \
    -seed "$SEED" \
    -victim-max-p99 "$VICTIM_MAX_P99" \
    -fairness-drain "$FAIR_DRAIN" \
    -json > "$FAIR_REPORT" || code=$?
  echo "soak: backlog-fairness report ($FAIR_REPORT):"
  cat "$FAIR_REPORT"
fi

if [ "$code" -eq 0 ]; then
  echo "soak: phase 7 — 3-node cluster behind balarchgw, cluster-mix for $CLUSTER_DURATION, kill drill at ${CLUSTER_KILL_AFTER}s"
  GW_PORT=$((PORT + 2))
  N1_PORT=$((PORT + 3))
  N2_PORT=$((PORT + 4))
  N3_PORT=$((PORT + 5))
  "$DIR/balarchd" -addr "127.0.0.1:$N1_PORT" -quiet -node-id n1 -store-dir "$DIR/store-n1" &
  N1_PID=$!
  "$DIR/balarchd" -addr "127.0.0.1:$N2_PORT" -quiet -node-id n2 -store-dir "$DIR/store-n2" &
  N2_PID=$!
  "$DIR/balarchd" -addr "127.0.0.1:$N3_PORT" -quiet -node-id n3 -store-dir "$DIR/store-n3" &
  N3_PID=$!
  "$DIR/balarchgw" -addr "127.0.0.1:$GW_PORT" -quiet -probe-interval 500ms \
    -nodes "http://127.0.0.1:$N1_PORT,http://127.0.0.1:$N2_PORT,http://127.0.0.1:$N3_PORT" &
  GW_PID=$!
  trap 'kill "$PID" "$N1_PID" "$N2_PID" "$N3_PID" "$GW_PID" $(cat "$DIR/n2-restarted.pid" 2>/dev/null) 2>/dev/null || true' EXIT

  # The drill: SIGKILL n2 mid-run — a crash, so in-flight and queued work
  # is stranded in its WAL, not drained — then restart it on the same
  # store dir. The gateway ejects it on the first failed proxy (and by
  # probe), fails its keyed traffic over to the survivors, and rejoins it
  # once probes pass; WAL replay requeues the stranded jobs so the drain
  # gate below can count them finished.
  (
    sleep "$CLUSTER_KILL_AFTER"
    echo "soak: cluster drill — killing n2 (pid $N2_PID)"
    kill -9 "$N2_PID" 2>/dev/null || true
    sleep "$CLUSTER_RESTART_AFTER"
    echo "soak: cluster drill — restarting n2 on its store dir"
    "$DIR/balarchd" -addr "127.0.0.1:$N2_PORT" -quiet -node-id n2 -store-dir "$DIR/store-n2" &
    echo "$!" > "$DIR/n2-restarted.pid"
  ) &
  DRILL_PID=$!

  "$DIR/balarchload" \
    -url "http://127.0.0.1:$GW_PORT" \
    -scenario cluster-mix \
    -duration "$CLUSTER_DURATION" \
    -workers "$WORKERS" \
    -seed "$SEED" \
    -max-p99 "$MAX_P99" \
    -jobs-drain "$JOBS_DRAIN" \
    -json > "$CLUSTER_REPORT" || code=$?
  wait "$DRILL_PID" 2>/dev/null || true
  echo "soak: cluster report ($CLUSTER_REPORT):"
  cat "$CLUSTER_REPORT"

  # Report-only: single-node (phase 2) vs 3-node-cluster throughput,
  # pulled from the "achieved rps" column of each report's run table. The
  # cluster adds a proxy hop and survives a crash mid-run, so this is
  # context for the artifact reader, not a gate.
  rps_of() {
    sed -n 's/.*achieved rps\\n-*\\n[a-z]* *\([0-9.]*\) *\([0-9.]*\) *\([0-9.]*\) *\([0-9.]*\) *\([0-9.]*\) *\([0-9.]*\).*/\6/p' "$1" | head -1
  }
  single_rps=$(rps_of "$REPORT")
  cluster_rps=$(rps_of "$CLUSTER_REPORT")
  echo "soak: throughput (report-only): single-node ${single_rps:-?} rps vs 3-node cluster ${cluster_rps:-?} rps"

  kill -TERM "$GW_PID" "$N1_PID" "$N3_PID" $(cat "$DIR/n2-restarted.pid" 2>/dev/null) 2>/dev/null || true
fi

# Archive the slowest request the daemon traced across every phase —
# the artifact that turns a p99 breach into a per-stage diagnosis.
# Best-effort: the soak verdict is the gates above, not this curl.
echo "soak: archiving slowest trace ($TRACE_REPORT)"
curl -fsS "http://127.0.0.1:$PPROF_PORT/debug/traces?slowest=1" > "$TRACE_REPORT" || true

echo "soak: graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "soak: daemon did not exit on SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
trap - EXIT

if [ "$code" -ne 0 ]; then
  echo "soak: GATES FAILED (exit $code)" >&2
  exit "$code"
fi
echo "soak: OK"
