#!/bin/sh
# Smoke test for the balarchd daemon: build it, start it, hit /healthz and
# one /v1/analyze request, assert 200s with well-formed JSON bodies, and
# shut it down cleanly. Runs in CI after the unit suite; also runnable
# locally: ./ci/smoke.sh
set -eu

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/balarchd"

echo "smoke: building balarchd"
go build -o "$BIN" ./cmd/balarchd

"$BIN" -addr "127.0.0.1:$PORT" -parallel 2 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -sf -o /dev/null "$BASE/healthz" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -ge 50 ]; then
    echo "smoke: daemon never became healthy" >&2
    exit 1
  fi
  sleep 0.1
done

check_json_field() {
  # check_json_field <body> <fragment> <label>
  case "$1" in
    *"$2"*) ;;
    *)
      echo "smoke: $3 response missing $2:" >&2
      echo "$1" >&2
      exit 1
      ;;
  esac
}

echo "smoke: GET /healthz"
HEALTH=$(curl -sf "$BASE/healthz")
check_json_field "$HEALTH" '"status": "ok"' healthz
check_json_field "$HEALTH" '"experiments": 16' healthz

echo "smoke: POST /v1/analyze"
ANALYSIS=$(curl -sf -X POST "$BASE/v1/analyze" \
  -H 'Content-Type: application/json' \
  -d '{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}')
# The paper's §1 example: C/IO = 50 against R(4096) = 30 — I/O bound,
# rebalanceable at M = 2^20.
check_json_field "$ANALYSIS" '"state": "io-bound"' analyze
check_json_field "$ANALYSIS" '"intensity": 50' analyze
check_json_field "$ANALYSIS" '"balanced_memory": 1048576' analyze

echo "smoke: POST /v1/sweep (cold, then cached)"
SWEEP_BODY='{"kernel": "matmul", "n": 64, "params": [4, 8]}'
COLD=$(curl -sf -X POST "$BASE/v1/sweep" -d "$SWEEP_BODY")
check_json_field "$COLD" '"cached": false' sweep
WARM=$(curl -sf -X POST "$BASE/v1/sweep" -d "$SWEEP_BODY")
check_json_field "$WARM" '"cached": true' sweep

echo "smoke: error envelope shape"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/analyze" -d '{')
if [ "$STATUS" != "400" ]; then
  echo "smoke: malformed body returned $STATUS, want 400" >&2
  exit 1
fi

echo "smoke: graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "smoke: daemon did not exit on SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
trap - EXIT

echo "smoke: OK"
