#!/bin/sh
# Smoke test for the balarchd daemon: build it, start it, and run the SDK
# smoke checker (cmd/clientsmoke) against it — /healthz liveness, /readyz
# readiness, the paper's §1 analyze example, the sweep memo, the typed
# error envelope, the X-Request-ID and W3C trace-id echoes, and the
# trace=1 Server-Timing profile — then shut the daemon down cleanly. The
# checks run through the public client package, so this also smoke-tests
# the SDK itself. Runs in CI after the unit suite; also runnable locally:
# ./ci/smoke.sh
set -eu

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
BIN="$(mktemp -d)/balarchd"

echo "smoke: building balarchd"
go build -o "$BIN" ./cmd/balarchd

"$BIN" -addr "127.0.0.1:$PORT" -parallel 2 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

echo "smoke: running clientsmoke against $BASE"
go run ./cmd/clientsmoke -url "$BASE" -wait 5s

echo "smoke: graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -ge 100 ]; then
    echo "smoke: daemon did not exit on SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
trap - EXIT

echo "smoke: OK"
