// Command balance answers the paper's question for a concrete PE: is it
// balanced for a given computation, and if C/IO grows by α, how much local
// memory restores balance?
//
// Usage:
//
//	balance -c 10e6 -io 20e6 -m 65536                 # analyze all kernels
//	balance -c 10e6 -io 1e6 -m 4096 -comp fft -alpha 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"balarch/internal/model"
	"balarch/internal/textplot"
)

// main parses the PE flags, analyzes the requested computations, prints
// one balance diagnosis per line, and exits 0 (2 on bad flags).
func main() {
	c := flag.Float64("c", 10e6, "computation bandwidth C (ops/s)")
	io := flag.Float64("io", 20e6, "I/O bandwidth IO (words/s)")
	m := flag.Float64("m", 65536, "local memory M (words)")
	comp := flag.String("comp", "", "computation: matmul, lu, grid2, grid3, fft, sort, matvec, trisolve (empty = all)")
	alpha := flag.Float64("alpha", 1, "bandwidth-ratio increase α for the rebalancing question")
	flag.Parse()

	pe := model.PE{C: *c, IO: *io, M: *m}
	if err := pe.Validate(); err != nil {
		fatal(err)
	}
	comps, err := selectComputations(*comp)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s  (intensity C/IO = %.4g)\n\n", pe, pe.Intensity())
	tb := textplot.NewTable("computation", "R(M)", "state", "M for balance", "law", "M_new at α")
	for _, cc := range comps {
		a, err := model.Analyze(pe, cc, 1e18)
		if err != nil {
			fatal(err)
		}
		balM := "unreachable"
		if a.Rebalanceable {
			balM = fmt.Sprintf("%.4g", a.BalancedMemory)
		}
		mNew := "-"
		if *alpha > 1 {
			if v, err := cc.Rebalance(*alpha, pe.M, 1e18); err == nil {
				mNew = fmt.Sprintf("%.4g", v)
			} else {
				mNew = "impossible"
			}
		}
		tb.AddRow(cc.Name, fmt.Sprintf("%.4g", cc.Ratio(pe.M)), a.State.String(), balM, cc.Law.Describe(), mNew)
	}
	fmt.Print(tb.String())
}

func selectComputations(name string) ([]model.Computation, error) {
	if name == "" {
		return model.Catalog(), nil
	}
	byName := map[string]model.Computation{
		"matmul":   model.MatrixMultiplication(),
		"lu":       model.MatrixTriangularization(),
		"grid2":    model.Grid(2),
		"grid3":    model.Grid(3),
		"grid4":    model.Grid(4),
		"fft":      model.FFT(),
		"sort":     model.Sorting(),
		"matvec":   model.MatrixVector(),
		"trisolve": model.TriangularSolve(),
		"spmv":     model.SparseMatVec(),
		"conv":     model.Convolution(16),
	}
	c, ok := byName[strings.ToLower(name)]
	if !ok {
		keys := make([]string, 0, len(byName))
		for k := range byName {
			keys = append(keys, k)
		}
		return nil, fmt.Errorf("unknown computation %q (have %s)", name, strings.Join(keys, ", "))
	}
	return []model.Computation{c}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "balance:", err)
	os.Exit(2)
}
