// Command balance answers the paper's question for a concrete PE: is it
// balanced for a given computation, and if C/IO grows by α, how much local
// memory restores balance? With -levels the machine is a multi-level
// hierarchy and every adjacent-level boundary gets the balance test.
//
// Usage:
//
//	balance -c 10e6 -io 20e6 -m 65536                 # analyze all kernels
//	balance -c 10e6 -io 1e6 -m 4096 -comp fft -alpha 2
//	balance -c 1e9 -levels "sram:1K@4G,dram:256K@1G,disk:64M@50M" -alpha 2
//
// A -levels spec lists capacity@bandwidth per level, innermost first, with
// an optional name: prefix; K/M/G/T are decimal SI suffixes (words and
// words/s).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"balarch/internal/model"
	"balarch/internal/textplot"
)

// main parses the PE flags, analyzes the requested computations, prints
// one balance diagnosis per line, and exits 0 (2 on bad flags).
func main() {
	c := flag.Float64("c", 10e6, "computation bandwidth C (ops/s)")
	io := flag.Float64("io", 20e6, "I/O bandwidth IO (words/s)")
	m := flag.Float64("m", 65536, "local memory M (words)")
	comp := flag.String("comp", "", "computation: matmul, lu, grid2, grid3, fft, sort, matvec, trisolve (empty = all)")
	alpha := flag.Float64("alpha", 1, "bandwidth-ratio increase α for the rebalancing question")
	levels := flag.String("levels", "", `memory hierarchy spec "[name:]cap@bw,…" innermost first (replaces -io/-m)`)
	flag.Parse()

	comps, err := selectComputations(*comp)
	if err != nil {
		fatal(err)
	}
	if *levels != "" {
		ls, err := parseLevels(*levels)
		if err != nil {
			fatal(err)
		}
		if err := runHierarchy(model.Hierarchy{C: *c, Levels: ls}, comps, *alpha); err != nil {
			fatal(err)
		}
		return
	}

	pe := model.PE{C: *c, IO: *io, M: *m}
	if err := pe.Validate(); err != nil {
		fatal(err)
	}

	fmt.Printf("%s  (intensity C/IO = %.4g)\n\n", pe, pe.Intensity())
	tb := textplot.NewTable("computation", "R(M)", "state", "M for balance", "law", "M_new at α")
	for _, cc := range comps {
		a, err := model.Analyze(pe, cc, 1e18)
		if err != nil {
			fatal(err)
		}
		balM := "unreachable"
		if a.Rebalanceable {
			balM = fmt.Sprintf("%.4g", a.BalancedMemory)
		}
		mNew := "-"
		if *alpha > 1 {
			if v, err := cc.Rebalance(*alpha, pe.M, 1e18); err == nil {
				mNew = fmt.Sprintf("%.4g", v)
			} else {
				mNew = "impossible"
			}
		}
		tb.AddRow(cc.Name, fmt.Sprintf("%.4g", cc.Ratio(pe.M)), a.State.String(), balM, cc.Law.Describe(), mNew)
	}
	fmt.Print(tb.String())
}

func selectComputations(name string) ([]model.Computation, error) {
	if name == "" {
		return model.Catalog(), nil
	}
	byName := map[string]model.Computation{
		"matmul":   model.MatrixMultiplication(),
		"lu":       model.MatrixTriangularization(),
		"grid2":    model.Grid(2),
		"grid3":    model.Grid(3),
		"grid4":    model.Grid(4),
		"fft":      model.FFT(),
		"sort":     model.Sorting(),
		"matvec":   model.MatrixVector(),
		"trisolve": model.TriangularSolve(),
		"spmv":     model.SparseMatVec(),
		"conv":     model.Convolution(16),
	}
	c, ok := byName[strings.ToLower(name)]
	if !ok {
		keys := make([]string, 0, len(byName))
		for k := range byName {
			keys = append(keys, k)
		}
		return nil, fmt.Errorf("unknown computation %q (have %s)", name, strings.Join(keys, ", "))
	}
	return []model.Computation{c}, nil
}

// parseLevels parses the -levels spec: comma-separated "[name:]cap@bw"
// entries, innermost first, with decimal SI suffixes K/M/G/T on both
// numbers.
func parseLevels(spec string) ([]model.Level, error) {
	var out []model.Level
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		var name string
		if i := strings.Index(entry, ":"); i >= 0 {
			name, entry = strings.TrimSpace(entry[:i]), entry[i+1:]
		}
		capStr, bwStr, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("level %q: want [name:]capacity@bandwidth", entry)
		}
		capacity, err := parseSI(capStr)
		if err != nil {
			return nil, fmt.Errorf("level %q capacity: %w", entry, err)
		}
		bw, err := parseSI(bwStr)
		if err != nil {
			return nil, fmt.Errorf("level %q bandwidth: %w", entry, err)
		}
		out = append(out, model.Level{Name: name, M: capacity, BW: bw})
	}
	return out, nil
}

// parseSI parses a float with an optional decimal SI suffix (K, M, G, T).
func parseSI(s string) (float64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'K', 'k':
			mult, s = 1e3, s[:n-1]
		case 'M', 'm':
			mult, s = 1e6, s[:n-1]
		case 'G', 'g':
			mult, s = 1e9, s[:n-1]
		case 'T', 't':
			mult, s = 1e12, s[:n-1]
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// runHierarchy prints the per-boundary diagnosis of every computation on
// the hierarchy, plus the rebalancing bill when α > 1.
func runHierarchy(h model.Hierarchy, comps []model.Computation, alpha float64) error {
	if err := h.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s\n\n", h)
	tb := textplot.NewTable("computation", "binding", "C/BW", "R(W)", "state", "Σ bill at α")
	var last model.HierarchyAnalysis // reused for the single-computation detail
	for _, cc := range comps {
		a, err := model.AnalyzeHierarchy(h, cc, 1e18)
		if err != nil {
			return err
		}
		last = a
		bind := a.BindingBoundary()
		bill := "-"
		if alpha > 1 {
			if r, err := model.RebalanceHierarchy(h, cc, alpha, 1e18); err == nil && r.Rebalanceable {
				bill = fmt.Sprintf("+%.4g", r.TotalDelta)
			} else if err == nil {
				bill = "impossible"
			} else {
				return err
			}
		}
		tb.AddRow(cc.Name, fmt.Sprintf("%d/%d", a.Binding, h.Depth()),
			fmt.Sprintf("%.4g", bind.Intensity), fmt.Sprintf("%.4g", bind.AchievableRatio),
			a.State.String(), bill)
	}
	fmt.Print(tb.String())

	// Per-boundary detail when a single computation was selected.
	if len(comps) == 1 {
		fmt.Printf("\nper-boundary detail (%s):\n", comps[0].Name)
		db := textplot.NewTable("boundary", "level", "W within", "C/BW", "R(W)", "state", "W for balance")
		for _, b := range last.Boundaries {
			name := b.Level.Name
			if name == "" {
				name = fmt.Sprintf("level %d", b.Boundary)
			}
			balW := "unreachable"
			if b.Rebalanceable {
				balW = fmt.Sprintf("%.4g", b.BalancedMemory)
			}
			db.AddRow(fmt.Sprintf("%d", b.Boundary), name, fmt.Sprintf("%.4g", b.CapacityWithin),
				fmt.Sprintf("%.4g", b.Intensity), fmt.Sprintf("%.4g", b.AchievableRatio),
				b.State.String(), balW)
		}
		fmt.Print(db.String())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "balance:", err)
	os.Exit(2)
}
