package main

import (
	"testing"

	"balarch/internal/model"
)

func TestSelectComputationsAll(t *testing.T) {
	comps, err := selectComputations("")
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 8 {
		t.Errorf("empty selector returned %d computations, want the 8-entry catalog", len(comps))
	}
}

func TestSelectComputationsByName(t *testing.T) {
	for _, name := range []string{"matmul", "lu", "grid2", "grid3", "grid4", "fft", "sort", "matvec", "trisolve", "spmv", "conv"} {
		comps, err := selectComputations(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(comps) != 1 {
			t.Errorf("%s: got %d computations", name, len(comps))
		}
	}
	// Case-insensitive.
	if _, err := selectComputations("FFT"); err != nil {
		t.Errorf("uppercase name rejected: %v", err)
	}
}

func TestSelectComputationsUnknown(t *testing.T) {
	if _, err := selectComputations("quantum"); err == nil {
		t.Error("unknown computation accepted")
	}
}

func TestParseSI(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
	}{{"64", 64}, {"1K", 1e3}, {"4G", 4e9}, {"2.5M", 2.5e6}, {"64m", 64e6}, {"1T", 1e12}, {"3e6", 3e6}, {" 10k ", 1e4}} {
		got, err := parseSI(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseSI(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "K", "1Q", "x@y"} {
		if _, err := parseSI(bad); err == nil {
			t.Errorf("parseSI(%q) accepted", bad)
		}
	}
}

func TestParseLevels(t *testing.T) {
	ls, err := parseLevels("sram:1K@4G, dram:256K@1G,64M@50M")
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 {
		t.Fatalf("got %d levels", len(ls))
	}
	if ls[0].Name != "sram" || ls[0].M != 1e3 || ls[0].BW != 4e9 {
		t.Errorf("level 0 = %+v", ls[0])
	}
	if ls[2].Name != "" || ls[2].M != 64e6 || ls[2].BW != 50e6 {
		t.Errorf("level 2 = %+v", ls[2])
	}
	for _, bad := range []string{"1K", "a@b", "1K@", "@4G", "sram:"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted", bad)
		}
	}
}

func TestRunHierarchyRejectsInvalid(t *testing.T) {
	comps, _ := selectComputations("fft")
	h := model.Hierarchy{C: 1e9, Levels: []model.Level{{BW: 1e6, M: 64}, {BW: 2e6, M: 256}}}
	if err := runHierarchy(h, comps, 2); err == nil {
		t.Error("non-monotone hierarchy accepted")
	}
}
