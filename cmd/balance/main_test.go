package main

import "testing"

func TestSelectComputationsAll(t *testing.T) {
	comps, err := selectComputations("")
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 8 {
		t.Errorf("empty selector returned %d computations, want the 8-entry catalog", len(comps))
	}
}

func TestSelectComputationsByName(t *testing.T) {
	for _, name := range []string{"matmul", "lu", "grid2", "grid3", "grid4", "fft", "sort", "matvec", "trisolve", "spmv", "conv"} {
		comps, err := selectComputations(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(comps) != 1 {
			t.Errorf("%s: got %d computations", name, len(comps))
		}
	}
	// Case-insensitive.
	if _, err := selectComputations("FFT"); err != nil {
		t.Errorf("uppercase name rejected: %v", err)
	}
}

func TestSelectComputationsUnknown(t *testing.T) {
	if _, err := selectComputations("quantum"); err == nil {
		t.Error("unknown computation accepted")
	}
}
