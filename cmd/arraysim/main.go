// Command arraysim simulates the paper's §4 processor arrays: it sweeps the
// array size p and reports the smallest per-PE memory at which the
// double-buffered pipeline stops starving for I/O.
//
// Usage:
//
//	arraysim -topology linear -workload matmul -n 2048 -pmax 32
//	arraysim -topology mesh -workload grid3 -n 128 -pmax 8
package main

import (
	"flag"
	"fmt"
	"os"

	"balarch/internal/array"
	"balarch/internal/machine"
	"balarch/internal/model"
	"balarch/internal/textplot"
)

// main parses the array flags, sweeps the array size, prints the per-PE
// balance memory table for the chosen topology and workload, and exits 0
// (2 on bad flags).
func main() {
	topology := flag.String("topology", "linear", "linear or mesh")
	workload := flag.String("workload", "matmul", "matmul, grid2, grid3, or fft")
	n := flag.Int("n", 2048, "problem size (matrix dim, grid side, FFT points)")
	pmax := flag.Int("pmax", 16, "largest array size to sweep (powers of two)")
	cellC := flag.Float64("cellc", 4e6, "per-cell computation bandwidth (ops/s)")
	cellIO := flag.Float64("cellio", 1e6, "per-cell link bandwidth (words/s)")
	maxMem := flag.Int("maxmem", 1<<16, "per-PE memory search ceiling (words)")
	tol := flag.Float64("tol", 0.05, "utilization tolerance for calling the array balanced")
	flag.Parse()

	w, err := pickWorkload(*workload, *n)
	if err != nil {
		fatal(err)
	}
	var ladder []int
	for m := 4; m <= *maxMem; m *= 2 {
		ladder = append(ladder, m)
	}
	cell := model.PE{C: *cellC, IO: *cellIO, M: 1}

	fmt.Printf("topology=%s workload=%s cell intensity C/IO=%.3g\n\n", *topology, w.Name(), cell.Intensity())
	tb := textplot.NewTable("p", "cells", "aggregate C/IO", "per-PE balance memory", "compute util")
	for p := 1; p <= *pmax; p *= 2 {
		var rates machine.Rates
		var cells int
		var alpha float64
		switch *topology {
		case "linear":
			arr := array.LinearArray{P: p, Cell: cell}
			rates, cells, alpha = arr.Rates(), p, arr.Aggregate().Intensity()
		case "mesh":
			arr := array.MeshArray{P: p, Cell: cell}
			rates, cells, alpha = arr.Rates(), arr.Cells(), arr.Aggregate().Intensity()
		default:
			fatal(fmt.Errorf("unknown topology %q", *topology))
		}
		bp, err := array.FindBalancedMemory(rates, cells, w, ladder, *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "p=%d: %v\n", p, err)
			continue
		}
		tb.AddRow(p, cells, alpha, bp.PerPEMemory, fmt.Sprintf("%.3f", bp.Metrics.ComputeUtilization()))
	}
	fmt.Print(tb.String())
}

func pickWorkload(name string, n int) (array.Workload, error) {
	switch name {
	case "matmul":
		return array.MatMulWorkload{N: n}, nil
	case "grid2":
		return array.GridWorkload{Dim: 2, Size: n, Iters: 2}, nil
	case "grid3":
		return array.GridWorkload{Dim: 3, Size: n, Iters: 2}, nil
	case "fft":
		return array.FFTWorkload{N: n}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arraysim:", err)
	os.Exit(2)
}
