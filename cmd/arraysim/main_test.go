package main

import "testing"

func TestPickWorkload(t *testing.T) {
	for _, name := range []string{"matmul", "grid2", "grid3", "fft"} {
		w, err := pickWorkload(name, 256)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Name() == "" {
			t.Errorf("%s: empty workload name", name)
		}
	}
	if _, err := pickWorkload("raytrace", 64); err == nil {
		t.Error("unknown workload accepted")
	}
}
