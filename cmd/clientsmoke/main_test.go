package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"balarch"
	"balarch/client"
	"balarch/internal/cluster"
)

func TestSmokeAgainstRealHandler(t *testing.T) {
	srv := httptest.NewServer(balarch.NewServerHandler(balarch.ServerOptions{Parallelism: 2}))
	defer srv.Close()
	var errb bytes.Buffer
	if code := run(context.Background(), []string{"-url", srv.URL}, &errb); code != 0 {
		t.Fatalf("exit %d\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "clientsmoke: OK") {
		t.Errorf("missing verdict: %s", errb.String())
	}
}

// TestSmokeAgainstGateway runs the identical check sequence against a
// two-node cluster behind a gateway: health, the merged GET /v1/ index,
// tracing, the sweep memo (ring-pinned to one owner), all of it. The
// gateway is a drop-in balarchd to an SDK client, and this is the gate.
func TestSmokeAgainstGateway(t *testing.T) {
	n1 := httptest.NewServer(balarch.NewServerHandler(balarch.ServerOptions{Parallelism: 2, NodeID: "n1"}))
	defer n1.Close()
	n2 := httptest.NewServer(balarch.NewServerHandler(balarch.ServerOptions{Parallelism: 2, NodeID: "n2"}))
	defer n2.Close()
	gw, err := cluster.New(cluster.Options{Nodes: []string{n1.URL, n2.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()
	var errb bytes.Buffer
	if code := run(context.Background(), []string{"-url", srv.URL}, &errb); code != 0 {
		t.Fatalf("exit %d\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "clientsmoke: OK") {
		t.Errorf("missing verdict: %s", errb.String())
	}
}

func TestSmokeFailsAgainstNothing(t *testing.T) {
	var errb bytes.Buffer
	code := run(context.Background(), []string{"-url", "http://127.0.0.1:1", "-wait", "200ms"}, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 against an unreachable daemon", code)
	}
	if !strings.Contains(errb.String(), "never became healthy") {
		t.Errorf("unexpected failure message: %s", errb.String())
	}
}

func TestSmokeCatchesWrongBehavior(t *testing.T) {
	// An imposter that 200s `{}` at everything must fail the first
	// semantic check, not pass vacuously.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	err = smoke(context.Background(), c, time.Second, &errb)
	if err == nil || !strings.Contains(err.Error(), "healthz") {
		t.Fatalf("smoke against an imposter = %v, want a healthz failure", err)
	}
}

func TestBadFlags(t *testing.T) {
	var errb bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &errb); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-url", "not-a-url"}, &errb); code != 1 {
		t.Errorf("bad url: exit %d, want 1", code)
	}
}
