// Command clientsmoke is the smoke checker ci/smoke.sh runs against a
// freshly started balarchd. It performs the checks the old curl pipeline
// performed — health, readiness, the paper's §1 analyze example, a
// cold-then-cached sweep, the typed error envelope, the X-Request-ID and
// trace-id echoes — but through the public client SDK, so the smoke test
// exercises the same code path SDK users run instead of hand-rolled shell
// JSON matching. The client is built with tracing on, so every check also
// exercises W3C traceparent propagation through the middleware chain.
//
// Usage:
//
//	clientsmoke -url http://127.0.0.1:18080 [-wait 5s]
//
// -wait polls /healthz until the daemon answers (for just-started
// servers). Exit status: 0 all checks pass, 1 a check failed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"balarch/client"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stderr))
}

// run is main's testable body.
func run(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("clientsmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:18080", "balarchd base URL")
	wait := fs.Duration("wait", 5*time.Second, "how long to poll /healthz for a just-started daemon")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	c, err := client.New(*url, client.WithTracing())
	if err != nil {
		fmt.Fprintln(stderr, "clientsmoke:", err)
		return 1
	}
	if err := smoke(ctx, c, *wait, stderr); err != nil {
		fmt.Fprintln(stderr, "clientsmoke: FAIL:", err)
		return 1
	}
	fmt.Fprintln(stderr, "clientsmoke: OK")
	return 0
}

// smoke runs the check sequence, stopping at the first failure.
func smoke(ctx context.Context, c *client.Client, wait time.Duration, stderr io.Writer) error {
	// 1. Health (with startup polling).
	h, err := c.WaitHealthy(ctx, wait)
	if err != nil {
		return fmt.Errorf("daemon never became healthy: %w", err)
	}
	if h.Status != "ok" || h.Experiments != 16 {
		return fmt.Errorf("healthz = %+v, want status ok with 16 experiments", h)
	}
	fmt.Fprintln(stderr, "clientsmoke: healthz ok")

	// 2. The paper's §1 example: C/IO = 50 against R(4096) = 30 —
	// I/O bound, rebalanceable at M = 2^20.
	a, err := c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 50e6, IO: 1e6, M: 4096},
		Computation: client.Computation{Name: "fft"},
	})
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if a.State != "io-bound" || a.Intensity != 50 || a.BalancedMemory != 1<<20 {
		return fmt.Errorf("analyze = %+v, want io-bound at intensity 50, balanced at 2^20", a)
	}
	fmt.Fprintln(stderr, "clientsmoke: analyze ok")

	// 3. Sweep: cold then served from the single-flight memo.
	sweepReq := &client.SweepRequest{Kernel: "matmul", N: 64, Params: []int{4, 8}}
	cold, err := c.Sweep(ctx, sweepReq)
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	if cold.Cached || len(cold.Points) != 2 {
		return fmt.Errorf("cold sweep = cached %v with %d points, want fresh with 2", cold.Cached, len(cold.Points))
	}
	warm, err := c.Sweep(ctx, sweepReq)
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	if !warm.Cached {
		return errors.New("second identical sweep was not served from the memo")
	}
	fmt.Fprintln(stderr, "clientsmoke: sweep memo ok")

	// 4. Error envelope: malformed JSON is 400 with a decodable envelope,
	// and the SDK surfaces it as a typed APIError.
	raw, err := c.Do(ctx, http.MethodPost, "/v1/analyze", []byte("{"))
	if err != nil {
		return fmt.Errorf("malformed-body request: %w", err)
	}
	if raw.Status != http.StatusBadRequest {
		return fmt.Errorf("malformed body returned %d, want 400", raw.Status)
	}
	ae := client.DecodeAPIError(raw)
	if ae.Code != "bad_json" || ae.RequestID == "" {
		return fmt.Errorf("envelope decoded to %+v, want code bad_json with a request id", ae)
	}
	_, err = c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 1, IO: 1, M: 1},
		Computation: client.Computation{Name: "not-a-computation"},
	})
	var typed *client.APIError
	if !errors.As(err, &typed) || typed.Status != http.StatusUnprocessableEntity {
		return fmt.Errorf("unknown computation error = %v, want a 422 APIError", err)
	}
	fmt.Fprintln(stderr, "clientsmoke: error envelope ok")

	// 5. X-Request-ID echo on a plain probe.
	if raw, err = c.Do(ctx, http.MethodGet, "/healthz", nil); err != nil {
		return err
	} else if raw.Header.Get(client.RequestIDHeader) == "" {
		return errors.New("response missing X-Request-ID")
	}
	fmt.Fprintln(stderr, "clientsmoke: request-id echo ok")

	// 6. The computation catalog: every advertised id must be accepted
	// back by analyze — discovered, not hard-coded.
	cat, err := c.Catalog(ctx)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if len(cat.Computations) < 9 {
		return fmt.Errorf("catalog lists %d computations, want ≥ 9", len(cat.Computations))
	}
	for _, e := range cat.Computations {
		if e.ID == "" || e.Law == "" || e.RatioFamily == "" {
			return fmt.Errorf("catalog entry incomplete: %+v", e)
		}
	}
	first := cat.Computations[0]
	if _, err := c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 1e6, IO: 1e6, M: 4096},
		Computation: client.Computation{Name: first.ID},
	}); err != nil {
		return fmt.Errorf("catalog id %q rejected by analyze: %w", first.ID, err)
	}
	fmt.Fprintln(stderr, "clientsmoke: catalog ok")

	// 7. The hierarchy surface end to end: a three-level machine analyzed
	// per boundary.
	ha, err := c.Analyze(ctx, &client.AnalyzeRequest{
		PE: client.PE{C: 1e9},
		Levels: []client.Level{
			{Name: "sram", BW: 4e9, M: 1024},
			{Name: "dram", BW: 1e9, M: 262144},
			{Name: "disk", BW: 1e5, M: 67108864},
		},
		Computation: client.Computation{Name: "matmul"},
	})
	if err != nil {
		return fmt.Errorf("hierarchy analyze: %w", err)
	}
	if len(ha.Boundaries) != 3 || ha.BindingBoundary != 3 || ha.State != "io-bound" {
		return fmt.Errorf("hierarchy analyze = %+v, want 3 boundaries binding at the disk", ha)
	}
	fmt.Fprintln(stderr, "clientsmoke: hierarchy ok")

	// 8. Emulation: Hanlon's question end to end — eight modules behind a
	// perfect interconnect still pay the module port on an io-bound
	// computation, so the first boundary binds and efficiency sits
	// strictly inside (0, 1).
	em, err := c.Emulation(ctx, &client.EmulationRequest{
		C:           100e6,
		Computation: client.Computation{Name: "fft"},
		Modules:     8, ModuleM: 65536, ModuleBW: 1e6,
	})
	if err != nil {
		return fmt.Errorf("emulation: %w", err)
	}
	if em.BindingBoundary != 1 || em.Efficiency <= 0 || em.Efficiency >= 1 {
		return fmt.Errorf("emulation = %+v, want the module port binding with efficiency in (0, 1)", em)
	}
	fmt.Fprintln(stderr, "clientsmoke: emulation ok")

	// 9. The API index: GET /v1/ must advertise every route this smoke
	// exercised, the error code the envelope check drew, and every
	// computation the catalog listed — the index is generated from the
	// server's own route tables, so a hole here is a route added without
	// being advertised.
	idx, err := c.APIIndex(ctx)
	if err != nil {
		return fmt.Errorf("api index: %w", err)
	}
	advertised := make(map[string]bool, len(idx.Routes))
	for _, rt := range idx.Routes {
		if rt.Method == "" || rt.Path == "" || rt.Description == "" {
			return fmt.Errorf("api index route incomplete: %+v", rt)
		}
		advertised[rt.Method+" "+rt.Path] = true
	}
	for _, want := range []string{
		"GET /healthz", "GET /v1/", "GET /v1/catalog",
		"POST /v1/analyze", "POST /v1/sweep", "POST /v1/emulation",
	} {
		if !advertised[want] {
			return fmt.Errorf("api index does not advertise %q (routes: %d)", want, len(idx.Routes))
		}
	}
	codes := make(map[string]bool, len(idx.ErrorCodes))
	for _, code := range idx.ErrorCodes {
		codes[code] = true
	}
	if !codes["bad_json"] || !codes["unknown_computation"] {
		return fmt.Errorf("api index error codes missing bad_json/unknown_computation: %v", idx.ErrorCodes)
	}
	known := make(map[string]bool, len(idx.Computations))
	for _, id := range idx.Computations {
		known[id] = true
	}
	for _, e := range cat.Computations {
		if !known[e.ID] {
			return fmt.Errorf("catalog computation %q absent from the api index", e.ID)
		}
	}
	fmt.Fprintln(stderr, "clientsmoke: api index ok")

	// 10. Readiness: distinct from liveness — a running daemon that has
	// not begun draining must say so.
	rdy, err := c.Ready(ctx)
	if err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	if rdy.Status != "ready" {
		return fmt.Errorf("readyz status = %q, want ready", rdy.Status)
	}
	fmt.Fprintln(stderr, "clientsmoke: readyz ok")

	// 11. Trace propagation end to end: the traced client (every request
	// above carried a sampled traceparent) must get its trace id echoed,
	// and trace=1 must return the stage profile as Server-Timing.
	if raw, err = c.Do(ctx, http.MethodGet, "/healthz", nil); err != nil {
		return err
	}
	if !raw.TraceEchoed() {
		return fmt.Errorf("traced request not echoed: sent %q, got %q",
			raw.Traceparent, raw.Header.Get("Traceparent"))
	}
	if raw, err = c.Do(ctx, http.MethodGet, "/v1/catalog?trace=1", nil); err != nil {
		return err
	}
	if raw.ServerTiming() == "" {
		return errors.New("trace=1 response missing Server-Timing")
	}
	fmt.Fprintln(stderr, "clientsmoke: trace echo ok")
	return nil
}
