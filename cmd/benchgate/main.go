// Command benchgate compares two `go test -bench` output files and fails
// when a watched benchmark regresses beyond a threshold — the pass/fail
// arm of the CI bench job (benchstat renders the human-readable table; this
// gate decides).
//
// Usage:
//
//	benchgate -old baseline.txt -new current.txt
//	benchgate -old baseline.txt -new current.txt -match 'RunAll|Server' -max-regress 20
//
// Both files hold standard benchmark lines ("BenchmarkX-8 100 12345 ns/op
// ..."), typically from -count=5; benchgate takes the per-benchmark median
// ns/op (robust against one noisy run, same statistic benchstat centers
// on) and compares benchmarks present in both files whose name matches
// -match. A benchmark only in one file is reported but never fails the
// gate, so adding or retiring benchmarks doesn't break CI. Exit status:
// 0 within budget, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// main exits with run's code: 0 within budget, 1 regression, 2 usage or
// parse error.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline benchmark output file")
	newPath := fs.String("new", "", "current benchmark output file")
	match := fs.String("match", "RunAll|Server", "regexp of benchmark names the gate watches")
	maxRegress := fs.Float64("max-regress", 20, "max allowed ns/op increase, percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchgate: -old and -new are required")
		return 2
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: bad -match: %v\n", err)
		return 2
	}

	oldMed, err := medians(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	newMed, err := medians(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(newMed))
	for name := range newMed {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	watched := 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		newNs := newMed[name]
		oldNs, ok := oldMed[name]
		if !ok {
			fmt.Fprintf(stdout, "NEW   %-40s %12.0f ns/op (no baseline)\n", name, newNs)
			continue
		}
		watched++
		delta := (newNs - oldNs) / oldNs * 100
		verdict := "ok  "
		if delta > *maxRegress {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(stdout, "%s  %-40s %12.0f -> %12.0f ns/op  %+7.1f%%\n",
			verdict, name, oldNs, newNs, delta)
	}
	for name := range oldMed {
		if re.MatchString(name) {
			if _, ok := newMed[name]; !ok {
				fmt.Fprintf(stdout, "GONE  %-40s (was %0.f ns/op)\n", name, oldMed[name])
			}
		}
	}
	if watched == 0 {
		fmt.Fprintf(stderr, "benchgate: no benchmark matched %q in both files — gate vacuous\n", *match)
	}
	if failed {
		fmt.Fprintf(stdout, "benchgate: regression beyond %.0f%%\n", *maxRegress)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: %d watched benchmark(s) within %.0f%%\n", watched, *maxRegress)
	return 0
}

// benchLine matches one benchmark result line; the -N GOMAXPROCS suffix is
// stripped so runs from differently sized machines still line up.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)

// medians parses a benchmark output file into name → median ns/op.
func medians(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	med := make(map[string]float64, len(samples))
	for name, xs := range samples {
		sort.Float64s(xs)
		n := len(xs)
		if n%2 == 1 {
			med[name] = xs[n/2]
		} else {
			med[name] = (xs[n/2-1] + xs[n/2]) / 2
		}
	}
	return med, nil
}
