// Command benchgate compares two `go test -bench` output files and fails
// when a watched benchmark regresses beyond a threshold — the pass/fail
// arm of the CI bench job (benchstat renders the human-readable table; this
// gate decides).
//
// Usage:
//
//	benchgate -old baseline.txt -new current.txt
//	benchgate -old baseline.txt -new current.txt -match 'RunAll|Server' -max-regress 20
//	benchgate -old baseline.txt -new current.txt -gate-allocs 'ServerAnalyze|SweepCached' -gate-bytes 'Server'
//
// Both files hold standard benchmark lines ("BenchmarkX-8 100 12345 ns/op
// 64 B/op 2 allocs/op ..."), typically from -count=5; benchgate takes the
// per-benchmark median of each metric (robust against one noisy run, same
// statistic benchstat centers on) and compares benchmarks present in both
// files. Three independent gates:
//
//   - ns/op: benchmarks matching -match may grow at most -max-regress
//     percent.
//   - allocs/op: benchmarks matching -gate-allocs have ZERO tolerance —
//     any increase over the baseline median fails. Allocation counts are
//     deterministic, so one extra allocation is a real regression, not
//     noise.
//   - B/op: benchmarks matching -gate-bytes may grow at most -max-regress
//     percent (size can wobble with pooled-buffer growth, so it gets the
//     percentage budget, not zero tolerance).
//
// A benchmark only in one file is reported but never fails the gate, so
// adding or retiring benchmarks doesn't break CI; likewise a watched
// benchmark missing B/op or allocs/op columns (a run without -benchmem) is
// reported, not failed. Exit status: 0 within budget, 1 regression, 2
// usage/parse error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// main exits with run's code: 0 within budget, 1 regression, 2 usage or
// parse error.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	oldPath := fs.String("old", "", "baseline benchmark output file")
	newPath := fs.String("new", "", "current benchmark output file")
	match := fs.String("match", "RunAll|Server", "regexp of benchmark names the ns/op gate watches")
	maxRegress := fs.Float64("max-regress", 20, "max allowed ns/op (and B/op) increase, percent")
	gateAllocs := fs.String("gate-allocs", "", "regexp of benchmark names whose allocs/op may not increase at all")
	gateBytes := fs.String("gate-bytes", "", "regexp of benchmark names whose B/op may grow at most -max-regress percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(stderr, "benchgate: -old and -new are required")
		return 2
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: bad -match: %v\n", err)
		return 2
	}
	var allocRe, byteRe *regexp.Regexp
	if *gateAllocs != "" {
		if allocRe, err = regexp.Compile(*gateAllocs); err != nil {
			fmt.Fprintf(stderr, "benchgate: bad -gate-allocs: %v\n", err)
			return 2
		}
	}
	if *gateBytes != "" {
		if byteRe, err = regexp.Compile(*gateBytes); err != nil {
			fmt.Fprintf(stderr, "benchgate: bad -gate-bytes: %v\n", err)
			return 2
		}
	}

	oldMed, err := medians(*oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	newMed, err := medians(*newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(newMed))
	for name := range newMed {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	watched := 0
	for _, name := range names {
		nm := newMed[name]
		om, ok := oldMed[name]
		if re.MatchString(name) {
			if !ok {
				fmt.Fprintf(stdout, "NEW   %-40s %12.0f ns/op (no baseline)\n", name, nm.ns)
			} else {
				watched++
				delta := (nm.ns - om.ns) / om.ns * 100
				verdict := "ok  "
				if delta > *maxRegress {
					verdict = "FAIL"
					failed = true
				}
				fmt.Fprintf(stdout, "%s  %-40s %12.0f -> %12.0f ns/op  %+7.1f%%\n",
					verdict, name, om.ns, nm.ns, delta)
			}
		}
		if allocRe != nil && allocRe.MatchString(name) && ok {
			switch {
			case !nm.hasAllocs || !om.hasAllocs:
				fmt.Fprintf(stderr, "benchgate: %s: no allocs/op column (run with -benchmem)\n", name)
			default:
				verdict := "ok  "
				if nm.allocs > om.allocs {
					verdict = "FAIL"
					failed = true
				}
				fmt.Fprintf(stdout, "%s  %-40s %12.0f -> %12.0f allocs/op (zero tolerance)\n",
					verdict, name, om.allocs, nm.allocs)
			}
		}
		if byteRe != nil && byteRe.MatchString(name) && ok {
			switch {
			case !nm.hasBytes || !om.hasBytes:
				fmt.Fprintf(stderr, "benchgate: %s: no B/op column (run with -benchmem)\n", name)
			case om.bytes == 0:
				if nm.bytes > 0 {
					failed = true
					fmt.Fprintf(stdout, "FAIL  %-40s %12.0f -> %12.0f B/op (baseline was zero)\n",
						name, om.bytes, nm.bytes)
				}
			default:
				delta := (nm.bytes - om.bytes) / om.bytes * 100
				verdict := "ok  "
				if delta > *maxRegress {
					verdict = "FAIL"
					failed = true
				}
				fmt.Fprintf(stdout, "%s  %-40s %12.0f -> %12.0f B/op  %+7.1f%%\n",
					verdict, name, om.bytes, nm.bytes, delta)
			}
		}
	}
	for name, om := range oldMed {
		if re.MatchString(name) {
			if _, ok := newMed[name]; !ok {
				fmt.Fprintf(stdout, "GONE  %-40s (was %0.f ns/op)\n", name, om.ns)
			}
		}
	}
	if watched == 0 {
		fmt.Fprintf(stderr, "benchgate: no benchmark matched %q in both files — gate vacuous\n", *match)
	}
	if failed {
		fmt.Fprintf(stdout, "benchgate: regression beyond budget\n")
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: %d watched benchmark(s) within budget\n", watched)
	return 0
}

// benchLine matches one benchmark result line; the -N GOMAXPROCS suffix is
// stripped so runs from differently sized machines still line up. The B/op
// and allocs/op columns (present under -benchmem) are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op(?:\s+([0-9.]+)\s+B/op)?(?:\s+([0-9.]+)\s+allocs/op)?`)

// metrics is one benchmark's per-metric medians. hasBytes/hasAllocs record
// whether the optional -benchmem columns were present at all.
type metrics struct {
	ns        float64
	bytes     float64
	allocs    float64
	hasBytes  bool
	hasAllocs bool
}

// medians parses a benchmark output file into name → per-metric medians.
func medians(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	type samples struct{ ns, bytes, allocs []float64 }
	acc := make(map[string]*samples)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := acc[m[1]]
		if s == nil {
			s = &samples{}
			acc[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		if m[3] != "" {
			if v, err := strconv.ParseFloat(m[3], 64); err == nil {
				s.bytes = append(s.bytes, v)
			}
		}
		if m[4] != "" {
			if v, err := strconv.ParseFloat(m[4], 64); err == nil {
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(acc) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	med := make(map[string]metrics, len(acc))
	for name, s := range acc {
		m := metrics{ns: median(s.ns)}
		if len(s.bytes) > 0 {
			m.bytes, m.hasBytes = median(s.bytes), true
		}
		if len(s.allocs) > 0 {
			m.allocs, m.hasAllocs = median(s.allocs), true
		}
		med[name] = m
	}
	return med, nil
}

// median returns the middle sample (mean of the middle two when even).
// xs must be non-empty; it is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
