package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a synthetic benchmark output file.
func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `
goos: linux
BenchmarkRunAllParallel-8    	      10	 100000 ns/op	 500 B/op	 5 allocs/op
BenchmarkRunAllParallel-8    	      10	 110000 ns/op	 500 B/op	 5 allocs/op
BenchmarkRunAllParallel-8    	      10	 120000 ns/op	 500 B/op	 5 allocs/op
BenchmarkServerAnalyze-8     	    1000	   1000 ns/op
BenchmarkServerAnalyze-8     	    1000	   1100 ns/op
BenchmarkServerAnalyze-8     	    1000	   1200 ns/op
BenchmarkUnwatchedThing-8    	    1000	   9999 ns/op
PASS
`

func gate(t *testing.T, oldBody, newBody string, extra ...string) (int, string, string) {
	t.Helper()
	args := append([]string{
		"-old", writeBench(t, "old.txt", oldBody),
		"-new", writeBench(t, "new.txt", newBody),
	}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGatePassesWithinBudget(t *testing.T) {
	// Medians: 110000 → 115000 (+4.5%), 1100 → 1150 (+4.5%): within 20%.
	current := strings.ReplaceAll(baseline, "110000", "115000")
	current = strings.ReplaceAll(current, "1100 ns", "1150 ns")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "2 watched benchmark(s)") {
		t.Errorf("watched count missing:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Server median 1100 → 2200: +100%, over any sane budget.
	current := strings.ReplaceAll(baseline, "1000 ns", "2000 ns")
	current = strings.ReplaceAll(current, "1100 ns", "2200 ns")
	current = strings.ReplaceAll(current, "1200 ns", "2400 ns")
	code, out, _ := gate(t, baseline, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  BenchmarkServerAnalyze") {
		t.Errorf("missing FAIL line:\n%s", out)
	}
	// The regression is confined to the server bench; RunAll stays ok.
	if !strings.Contains(out, "ok    BenchmarkRunAllParallel") {
		t.Errorf("missing ok line:\n%s", out)
	}
}

func TestGateIgnoresUnwatchedAndMedianAbsorbsNoise(t *testing.T) {
	// The unwatched benchmark regresses 100×: must not fail the gate.
	current := strings.ReplaceAll(baseline, "9999", "999900")
	// One noisy outlier sample in a watched bench: the median ignores it.
	current = strings.ReplaceAll(current, "120000", "990000")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "Unwatched") {
		t.Errorf("unwatched benchmark leaked into the report:\n%s", out)
	}
}

func TestGateNewAndGoneBenchmarks(t *testing.T) {
	current := baseline + "BenchmarkServerSweepCached-8 100 500 ns/op\n"
	current = strings.ReplaceAll(current,
		"BenchmarkRunAllParallel", "BenchmarkRunAllSerial")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("added/retired benchmarks must not fail the gate: %d\n%s", code, out)
	}
	if !strings.Contains(out, "NEW   BenchmarkServerSweepCached") {
		t.Errorf("missing NEW line:\n%s", out)
	}
	if !strings.Contains(out, "GONE  BenchmarkRunAllParallel") {
		t.Errorf("missing GONE line:\n%s", out)
	}
}

func TestGateCustomThresholdAndMatch(t *testing.T) {
	current := strings.ReplaceAll(baseline, "110000", "118000") // +7.3% median
	code, _, _ := gate(t, baseline, current, "-max-regress", "5", "-match", "RunAll")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 at 5%% budget", code)
	}
	code, _, _ = gate(t, baseline, current, "-max-regress", "10", "-match", "RunAll")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at 10%% budget", code)
	}
}

// memBaseline exercises the -benchmem columns: three flat-ns samples with
// stable B/op and allocs/op.
const memBaseline = `
goos: linux
BenchmarkServerAnalyze-8     	    1000	   1000 ns/op	  32 B/op	   2 allocs/op
BenchmarkServerAnalyze-8     	    1000	   1000 ns/op	  32 B/op	   2 allocs/op
BenchmarkServerAnalyze-8     	    1000	   1000 ns/op	  32 B/op	   2 allocs/op
BenchmarkServerSweepCached-8 	    1000	   2000 ns/op	  64 B/op	   2 allocs/op
BenchmarkServerSweepCached-8 	    1000	   2000 ns/op	  64 B/op	   2 allocs/op
BenchmarkServerSweepCached-8 	    1000	   2000 ns/op	  64 B/op	   2 allocs/op
PASS
`

func TestGateAllocsZeroTolerance(t *testing.T) {
	// ns/op flat, one extra allocation: the plain ns gate passes, the
	// alloc gate fails — an allocation crept in without costing time yet.
	current := strings.ReplaceAll(memBaseline, "2 allocs", "3 allocs")
	code, out, _ := gate(t, memBaseline, current)
	if code != 0 {
		t.Fatalf("ns-only gate: exit = %d, want 0\n%s", code, out)
	}
	code, out, _ = gate(t, memBaseline, current, "-gate-allocs", "ServerAnalyze|SweepCached")
	if code != 1 {
		t.Fatalf("alloc gate: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "allocs/op (zero tolerance)") {
		t.Errorf("missing alloc verdict line:\n%s", out)
	}
	// A decrease is an improvement, never a failure.
	better := strings.ReplaceAll(memBaseline, "2 allocs", "1 allocs")
	if code, out, _ = gate(t, memBaseline, better, "-gate-allocs", "Server"); code != 0 {
		t.Fatalf("alloc improvement: exit = %d, want 0\n%s", code, out)
	}
}

func TestGateBytesPercentBudget(t *testing.T) {
	// ns/op and allocs flat, B/op up 4× on one bench: bytes gate fails,
	// and scoping it to the other bench passes.
	current := strings.ReplaceAll(memBaseline, "64 B/op", "256 B/op")
	code, out, _ := gate(t, memBaseline, current, "-gate-bytes", "Server")
	if code != 1 {
		t.Fatalf("bytes gate: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  BenchmarkServerSweepCached") || !strings.Contains(out, "B/op") {
		t.Errorf("missing B/op FAIL line:\n%s", out)
	}
	if code, out, _ = gate(t, memBaseline, current, "-gate-bytes", "ServerAnalyze"); code != 0 {
		t.Fatalf("scoped bytes gate: exit = %d, want 0\n%s", code, out)
	}
	// Within the percentage budget: 64 → 70 is +9.4% < 20%.
	small := strings.ReplaceAll(memBaseline, "64 B/op", "70 B/op")
	if code, out, _ = gate(t, memBaseline, small, "-gate-bytes", "Server"); code != 0 {
		t.Fatalf("small growth: exit = %d, want 0\n%s", code, out)
	}
}

func TestGateMemColumnsMissingIsReportedNotFatal(t *testing.T) {
	// The plain baseline has no -benchmem columns for ServerAnalyze: the
	// alloc gate reports it to stderr but does not fail the run.
	code, _, errOut := gate(t, baseline, baseline, "-gate-allocs", "ServerAnalyze")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 when columns are absent", code)
	}
	if !strings.Contains(errOut, "no allocs/op column") {
		t.Errorf("missing stderr note:\n%s", errOut)
	}
}

func TestGateUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-old", "only"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
	empty := writeBench(t, "empty.txt", "no benchmarks here\n")
	if code := run([]string{"-old", empty, "-new", empty}, &stdout, &stderr); code != 2 {
		t.Errorf("empty files: exit %d, want 2", code)
	}
	miss := filepath.Join(t.TempDir(), "nope.txt")
	if code := run([]string{"-old", miss, "-new", miss}, &stdout, &stderr); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
