package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a synthetic benchmark output file.
func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseline = `
goos: linux
BenchmarkRunAllParallel-8    	      10	 100000 ns/op	 500 B/op	 5 allocs/op
BenchmarkRunAllParallel-8    	      10	 110000 ns/op	 500 B/op	 5 allocs/op
BenchmarkRunAllParallel-8    	      10	 120000 ns/op	 500 B/op	 5 allocs/op
BenchmarkServerAnalyze-8     	    1000	   1000 ns/op
BenchmarkServerAnalyze-8     	    1000	   1100 ns/op
BenchmarkServerAnalyze-8     	    1000	   1200 ns/op
BenchmarkUnwatchedThing-8    	    1000	   9999 ns/op
PASS
`

func gate(t *testing.T, oldBody, newBody string, extra ...string) (int, string, string) {
	t.Helper()
	args := append([]string{
		"-old", writeBench(t, "old.txt", oldBody),
		"-new", writeBench(t, "new.txt", newBody),
	}, extra...)
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestGatePassesWithinBudget(t *testing.T) {
	// Medians: 110000 → 115000 (+4.5%), 1100 → 1150 (+4.5%): within 20%.
	current := strings.ReplaceAll(baseline, "110000", "115000")
	current = strings.ReplaceAll(current, "1100 ns", "1150 ns")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "2 watched benchmark(s)") {
		t.Errorf("watched count missing:\n%s", out)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// Server median 1100 → 2200: +100%, over any sane budget.
	current := strings.ReplaceAll(baseline, "1000 ns", "2000 ns")
	current = strings.ReplaceAll(current, "1100 ns", "2200 ns")
	current = strings.ReplaceAll(current, "1200 ns", "2400 ns")
	code, out, _ := gate(t, baseline, current)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  BenchmarkServerAnalyze") {
		t.Errorf("missing FAIL line:\n%s", out)
	}
	// The regression is confined to the server bench; RunAll stays ok.
	if !strings.Contains(out, "ok    BenchmarkRunAllParallel") {
		t.Errorf("missing ok line:\n%s", out)
	}
}

func TestGateIgnoresUnwatchedAndMedianAbsorbsNoise(t *testing.T) {
	// The unwatched benchmark regresses 100×: must not fail the gate.
	current := strings.ReplaceAll(baseline, "9999", "999900")
	// One noisy outlier sample in a watched bench: the median ignores it.
	current = strings.ReplaceAll(current, "120000", "990000")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "Unwatched") {
		t.Errorf("unwatched benchmark leaked into the report:\n%s", out)
	}
}

func TestGateNewAndGoneBenchmarks(t *testing.T) {
	current := baseline + "BenchmarkServerSweepCached-8 100 500 ns/op\n"
	current = strings.ReplaceAll(current,
		"BenchmarkRunAllParallel", "BenchmarkRunAllSerial")
	code, out, _ := gate(t, baseline, current)
	if code != 0 {
		t.Fatalf("added/retired benchmarks must not fail the gate: %d\n%s", code, out)
	}
	if !strings.Contains(out, "NEW   BenchmarkServerSweepCached") {
		t.Errorf("missing NEW line:\n%s", out)
	}
	if !strings.Contains(out, "GONE  BenchmarkRunAllParallel") {
		t.Errorf("missing GONE line:\n%s", out)
	}
}

func TestGateCustomThresholdAndMatch(t *testing.T) {
	current := strings.ReplaceAll(baseline, "110000", "118000") // +7.3% median
	code, _, _ := gate(t, baseline, current, "-max-regress", "5", "-match", "RunAll")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 at 5%% budget", code)
	}
	code, _, _ = gate(t, baseline, current, "-max-regress", "10", "-match", "RunAll")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at 10%% budget", code)
	}
}

func TestGateUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-old", "only"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -new: exit %d, want 2", code)
	}
	empty := writeBench(t, "empty.txt", "no benchmarks here\n")
	if code := run([]string{"-old", empty, "-new", empty}, &stdout, &stderr); code != 2 {
		t.Errorf("empty files: exit %d, want 2", code)
	}
	miss := filepath.Join(t.TempDir(), "nope.txt")
	if code := run([]string{"-old", miss, "-new", miss}, &stdout, &stderr); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
