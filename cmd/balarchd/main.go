// Command balarchd is the balance-as-a-service daemon: it serves the
// balarch HTTP JSON API (internal/server) — analyze, rebalance, roofline,
// kernel sweeps, the experiment suite, and heterogeneous batches — plus
// /healthz and /metrics, as a long-lived process with graceful shutdown.
//
// Usage:
//
//	balarchd                              # serve on :8080
//	balarchd -addr 127.0.0.1:9090 -parallel 4
//	balarchd -request-timeout 10s -max-batch 16 -max-body 262144
//	balarchd -store-dir /var/lib/balarch  # durable async jobs on /v1/jobs
//
// Flags tune the network surface (addr, read/write timeouts), the compute
// budget (parallel bounds every engine pool; max-inflight bounds concurrent
// requests; request-timeout bounds one request's wall clock), and the
// request caps (max-batch, max-body). -store-dir enables the durable async
// subsystem: submitted jobs are journaled to a WAL under it before the ack,
// results live in a content-addressed store there, and both survive
// restarts — start a new daemon on the same directory and it requeues
// whatever the old one left unfinished. -tenants-file enables API-key
// tenancy: callers presenting "Authorization: Bearer <key>" resolve to the
// configured tenant and get that tenant's token-bucket rate limit, job
// byte budget, and /metrics slice; without the flag every caller is
// anonymous and the traffic surface is unchanged. -pprof-addr (off by default) serves
// net/http/pprof on its own listener — bind it to loopback; the public mux
// never exposes /debug/pprof. -job-workers sizes the queue's
// executor pool (0 pauses execution: accept and journal only), -mem-budget
// caps the summed estimated footprint of live jobs (admission control;
// over-budget submits answer 429 + Retry-After), -job-ttl bounds how long
// finished jobs stay queryable. SIGINT/SIGTERM drain in-flight requests,
// then running jobs (queued ones stay journaled), before exit; a second
// signal kills immediately. Structured logs (one line per request) go to
// stderr; -quiet disables them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"balarch/internal/jobs"
	"balarch/internal/server"
)

// main starts the daemon and exits 0 on clean shutdown, 1 on serve/bind
// failure, 2 on bad flags.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Once the first signal starts the drain, restore default signal
	// disposition so a second SIGINT/SIGTERM kills immediately.
	context.AfterFunc(ctx, stop)
	os.Exit(run(ctx, os.Args[1:], os.Stderr, nil))
}

// run is main's testable body. If ready is non-nil it receives the bound
// address once the listener is up (tests use it to learn the ephemeral
// port).
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("balarchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for sweeps, experiments, and batch fan-out")
	maxInFlight := fs.Int("max-inflight", 0,
		"max concurrently handled requests (0 = 2×GOMAXPROCS, -1 = unlimited)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "connection read timeout")
	writeTimeout := fs.Duration("write-timeout", 120*time.Second, "connection write timeout")
	reqTimeout := fs.Duration("request-timeout", 60*time.Second,
		"per-request context budget (0 = no deadline)")
	maxBatch := fs.Int("max-batch", 64, "max requests per /v1/batch call")
	maxBody := fs.Int64("max-body", 1<<20, "max request body bytes")
	nodeID := fs.String("node-id", "",
		"cluster node identity stamped on every response as "+server.NodeHeader+"; empty adds no header (single-node default)")
	storeDir := fs.String("store-dir", "",
		"directory for the durable async subsystem (WAL-journaled /v1/jobs queue + content-addressed result store); empty disables jobs")
	jobWorkers := fs.Int("job-workers", 2,
		"job queue executor count (0 = accept and journal but do not execute)")
	memBudget := fs.Int64("mem-budget", 256<<20,
		"admission budget in bytes for queued+running jobs' estimated footprints (-1 = unlimited)")
	jobTTL := fs.Duration("job-ttl", 15*time.Minute,
		"how long finished jobs stay queryable before garbage collection")
	jobPolicy := fs.String("job-policy", "balanced",
		"job scheduler pick policy: balanced (memory-aware, tenant-fair) or fifo (strict submission order)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second,
		"drain budget for in-flight requests (and running jobs) on SIGINT/SIGTERM")
	tenantsFile := fs.String("tenants-file", "",
		"JSON tenants config enabling API-key tenancy: per-tenant token-bucket rate limits, job budgets, and /metrics slices; empty disables tenancy (every caller is anonymous and unthrottled)")
	pprofAddr := fs.String("pprof-addr", "",
		"listen address for net/http/pprof and /debug/traces (e.g. 127.0.0.1:6060); empty disables it; always a separate listener, never the public mux")
	traceSample := fs.Int("trace-sample", 128,
		"capture every Nth header-less request's trace (explicit trace=1 and sampled traceparent requests are always captured); 0 disables head sampling")
	logLevel := fs.String("log-level", "info",
		"minimum log level: debug, info, warn, or error (per-request lines log at debug; 5xx responses always log at warn)")
	logFormat := fs.String("log-format", "text",
		"log line format: text or json")
	quiet := fs.Bool("quiet", false, "disable logging entirely (see -log-level to keep warnings)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(stderr, "balarchd: -log-level: unknown level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	var logger *slog.Logger
	if !*quiet {
		hopts := &slog.HandlerOptions{Level: level}
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(stderr, hopts))
		case "json":
			logger = slog.New(slog.NewJSONHandler(stderr, hopts))
		default:
			fmt.Fprintf(stderr, "balarchd: -log-format: unknown format %q (want text or json)\n", *logFormat)
			return 2
		}
	}
	rt := *reqTimeout
	if rt == 0 {
		rt = -1 // Options treats 0 as "default"; the flag's 0 means "off"
	}
	workers := *jobWorkers
	if workers == 0 {
		workers = -1 // jobs.Options: 0 means default, negative means paused
	}
	if _, err := jobs.PolicyByName(*jobPolicy); err != nil {
		// A flag typo is a usage error, caught before the daemon binds.
		fmt.Fprintf(stderr, "balarchd: -job-policy: %v\n", err)
		return 2
	}
	var tenants *server.TenantsConfig
	if *tenantsFile != "" {
		var err error
		tenants, err = server.LoadTenantsFile(*tenantsFile)
		if err != nil {
			fmt.Fprintf(stderr, "balarchd: %v\n", err)
			return 1
		}
		if logger != nil {
			logger.Info("tenancy enabled", "tenants_file", *tenantsFile,
				"tenants", len(tenants.Tenants))
		}
	}
	sample := *traceSample
	if sample == 0 {
		sample = -1 // Options: 0 means default; negative disables sampling
	}
	srv := server.New(server.Options{
		Parallelism:      *parallel,
		RequestTimeout:   rt,
		TraceSampleEvery: sample,
		MaxBodyBytes:     *maxBody,
		MaxBatch:         *maxBatch,
		MaxInFlight:      *maxInFlight,
		Logger:           logger,
		StoreDir:         *storeDir,
		JobWorkers:       workers,
		MemBudgetBytes:   *memBudget,
		JobTTL:           *jobTTL,
		JobSchedPolicy:   *jobPolicy,
		Tenants:          tenants,
		NodeID:           *nodeID,
	})
	if *storeDir != "" {
		if err := srv.JobsErr(); err != nil {
			// A daemon asked for durability it cannot provide should not
			// limp along with jobs silently broken.
			fmt.Fprintf(stderr, "balarchd: opening job store: %v\n", err)
			return 1
		}
		if logger != nil {
			c := srv.Jobs().Counters()
			logger.Info("async jobs enabled", "store_dir", *storeDir,
				"workers", *jobWorkers, "mem_budget", *memBudget,
				"replayed", c.Replayed, "queued", c.Queued)
		}
	}

	httpSrv := &http.Server{
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "balarchd: %v\n", err)
		return 1
	}

	// The profiling surface is opt-in and isolated: its handlers live on
	// their own mux behind their own listener (typically a loopback
	// address), so the public API can never serve /debug/pprof whatever
	// the flag says.
	var pprofLn net.Listener
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Captured request traces ride the same operator-only listener:
		// trace payloads carry request ids and routes, which belong next
		// to the profiles, not on the tenant-facing mux.
		pmux.Handle("GET /debug/traces", srv.TraceHandler())
		pprofLn, err = net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "balarchd: pprof listener: %v\n", err)
			return 1
		}
		pprofSrv := &http.Server{Handler: pmux, ReadTimeout: *readTimeout}
		go pprofSrv.Serve(pprofLn)
		defer pprofSrv.Close()
		if logger != nil {
			logger.Info("pprof enabled", "addr", pprofLn.Addr().String())
		}
	}

	if logger != nil {
		logger.Info("serving", "addr", ln.Addr().String(), "parallel", *parallel)
	}
	if ready != nil {
		ready <- ln.Addr().String()
		if pprofLn != nil {
			// Best effort: a test that wants the profiling port listens
			// with a deeper buffer; the default harness just drops it.
			select {
			case ready <- pprofLn.Addr().String():
			default:
			}
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "balarchd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: flip /readyz to 503 first so load balancers stop
	// routing new work, then give in-flight requests the grace budget.
	srv.StartDrain()
	if logger != nil {
		logger.Info("shutting down", "grace", *shutdownGrace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Grace expired with requests still running: cut the connections.
		_ = httpSrv.Close()
		fmt.Fprintf(stderr, "balarchd: shutdown: %v\n", err)
		code = 1
	}
	// Then the job queue, on whatever grace remains: running jobs finish
	// (or are cut at the deadline and requeue on the next start), queued
	// jobs stay journaled in the WAL.
	if err := srv.Close(shCtx); err != nil {
		fmt.Fprintf(stderr, "balarchd: draining jobs: %v\n", err)
		code = 1
	}
	if logger != nil && srv.Jobs() != nil {
		c := srv.Jobs().Counters()
		logger.Info("job queue drained", "done", c.Done, "journaled", c.Queued)
	}
	return code
}
