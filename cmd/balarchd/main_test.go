package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"balarch/client"
	"balarch/internal/server"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a shutdown func, and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, <-chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...), io.Discard, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, code
	case c := <-code:
		cancel()
		t.Fatalf("daemon exited immediately with %d", c)
		return "", nil, nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
		return "", nil, nil
	}
}

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, code := startDaemon(t, "-parallel", "2", "-max-batch", "4")
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// One real API round trip through the TCP stack.
	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var analysis map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&analysis); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || analysis["state"] != "io-bound" {
		t.Fatalf("analyze = %d %v", resp.StatusCode, analysis)
	}

	// The daemon's -max-batch flag reaches the handler.
	over := `{"requests": [` + strings.Repeat(`{"op": "analyze", "request": {}},`, 4) +
		`{"op": "analyze", "request": {}}]}`
	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("oversized batch = %d, want 422", resp.StatusCode)
	}

	// Signal-path shutdown: cancelling the context (what NotifyContext
	// does on SIGINT/SIGTERM) must drain and exit 0.
	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, want 0", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// TestJobSurvivesDaemonRestart is the durable-jobs acceptance test:
// submit a job to a daemon whose queue cannot execute it (-job-workers
// 0), stop that daemon, start a new one on the same -store-dir, and the
// job must complete with a result byte-identical to the synchronous
// endpoint's response for the same request.
func TestJobSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	sweepBody := []byte(`{"kernel":"matmul","n":64,"params":[4,8]}`)

	// First life: accept + journal only.
	base, cancel, code := startDaemon(t, "-store-dir", dir, "-job-workers", "0")
	c, err := client.New(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{Op: "sweep", Request: sweepBody})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != "queued" {
		t.Fatalf("paused daemon ran the job: %+v", j)
	}
	cancel()
	select {
	case exit := <-code:
		if exit != 0 {
			t.Fatalf("first daemon exit %d", exit)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("first daemon did not stop")
	}

	// Second life: same store dir, workers on. The WAL replay must
	// requeue the journaled job and finish it.
	base2, cancel2, code2 := startDaemon(t, "-store-dir", dir, "-job-workers", "2")
	defer cancel2()
	c2, err := client.New(base2)
	if err != nil {
		t.Fatal(err)
	}
	done, err := c2.WaitForJob(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("replayed job ended %s: %s", done.State, done.Error)
	}
	got, err := c2.JobResult(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The synchronous answer for the same request, from a cold in-process
	// server (the restarted daemon's sweep memo now holds the flight, so
	// asking it synchronously would flip the response's cached flag).
	sync := client.NewFromHandler(server.New(server.Options{Parallelism: 2}).Handler())
	raw, err := sync.Do(ctx, http.MethodPost, "/v1/sweep", sweepBody)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Status != 200 {
		t.Fatalf("sync sweep status %d", raw.Status)
	}
	if string(got) != string(raw.Body) {
		t.Errorf("restarted job result differs from the synchronous response:\nasync: %s\nsync:  %s",
			got, raw.Body)
	}

	// The restart surfaced in the metrics: one replayed job.
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsReplayed != 1 || m.JobsDone != 1 {
		t.Errorf("metrics jobs_replayed/done = %d/%d, want 1/1", m.JobsReplayed, m.JobsDone)
	}

	cancel2()
	select {
	case exit := <-code2:
		if exit != 0 {
			t.Fatalf("second daemon exit %d", exit)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second daemon did not stop")
	}
}

// TestDaemonPprofEnabled: with -pprof-addr the profiling surface serves
// heap profiles on its own listener — and only there; the public mux must
// keep answering 404 for /debug/pprof paths.
func TestDaemonPprofEnabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 2) // main addr, then pprof addr
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0", "-quiet"},
			io.Discard, ready)
	}()
	recv := func(what string) string {
		select {
		case a := <-ready:
			return a
		case c := <-code:
			t.Fatalf("daemon exited %d before sending %s", c, what)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon never sent %s", what)
		}
		return ""
	}
	mainAddr := recv("main addr")
	pprofAddr := recv("pprof addr")

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "heap profile") {
		t.Fatalf("pprof heap = %d %.80s", resp.StatusCode, body)
	}

	// The public API surface must not leak the profiler.
	resp, err = http.Get("http://" + mainAddr + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("public mux served /debug/pprof/heap: %d", resp.StatusCode)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, want 0", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonPprofDisabledByDefault: without the flag there is no profiling
// surface anywhere.
func TestDaemonPprofDisabledByDefault(t *testing.T) {
	base, cancel, code := startDaemon(t)
	defer cancel()
	resp, err := http.Get(base + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/pprof/heap on public mux = %d, want 404", resp.StatusCode)
	}
	cancel()
	if c := <-code; c != 0 {
		t.Fatalf("exit code %d, want 0", c)
	}
}

// TestDaemonPprofBindFailure: a pprof listener that cannot bind must fail
// startup loudly, like the main listener.
func TestDaemonPprofBindFailure(t *testing.T) {
	base, cancel, code := startDaemon(t)
	defer cancel()
	addr := strings.TrimPrefix(base, "http://")
	if c := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-quiet",
		"-pprof-addr", addr}, io.Discard, nil); c != 1 {
		t.Errorf("pprof bind conflict exit = %d, want 1", c)
	}
	cancel()
	if c := <-code; c != 0 {
		t.Errorf("first daemon exit = %d, want 0", c)
	}
}

// TestDaemonStoreDirOpenFailure: a daemon that cannot open its store
// must exit 1, not serve with durability silently broken.
func TestDaemonStoreDirOpenFailure(t *testing.T) {
	// A file where the directory should be.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-quiet",
		"-store-dir", blocker}, io.Discard, nil); c != 1 {
		t.Errorf("store open failure exit = %d, want 1", c)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if c := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil); c != 2 {
		t.Errorf("bad flag exit = %d, want 2", c)
	}
}

func TestDaemonBindFailure(t *testing.T) {
	base, cancel, code := startDaemon(t)
	defer cancel()
	addr := strings.TrimPrefix(base, "http://")
	// Second daemon on the same port must fail to bind and exit 1.
	if c := run(context.Background(), []string{"-addr", addr, "-quiet"}, io.Discard, nil); c != 1 {
		t.Errorf("bind conflict exit = %d, want 1", c)
	}
	cancel()
	if c := <-code; c != 0 {
		t.Errorf("first daemon exit = %d, want 0", c)
	}
}
