package main

import (
	"context"
	"encoding/json"

	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL, a shutdown func, and the exit-code channel.
func startDaemon(t *testing.T, args ...string) (string, context.CancelFunc, <-chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...), io.Discard, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, code
	case c := <-code:
		cancel()
		t.Fatalf("daemon exited immediately with %d", c)
		return "", nil, nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
		return "", nil, nil
	}
}

func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, code := startDaemon(t, "-parallel", "2", "-max-batch", "4")
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}

	// One real API round trip through the TCP stack.
	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var analysis map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&analysis); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || analysis["state"] != "io-bound" {
		t.Fatalf("analyze = %d %v", resp.StatusCode, analysis)
	}

	// The daemon's -max-batch flag reaches the handler.
	over := `{"requests": [` + strings.Repeat(`{"op": "analyze", "request": {}},`, 4) +
		`{"op": "analyze", "request": {}}]}`
	resp, err = http.Post(base+"/v1/batch", "application/json", strings.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("oversized batch = %d, want 422", resp.StatusCode)
	}

	// Signal-path shutdown: cancelling the context (what NotifyContext
	// does on SIGINT/SIGTERM) must drain and exit 0.
	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d, want 0", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if c := run(context.Background(), []string{"-no-such-flag"}, io.Discard, nil); c != 2 {
		t.Errorf("bad flag exit = %d, want 2", c)
	}
}

func TestDaemonBindFailure(t *testing.T) {
	base, cancel, code := startDaemon(t)
	defer cancel()
	addr := strings.TrimPrefix(base, "http://")
	// Second daemon on the same port must fail to bind and exit 1.
	if c := run(context.Background(), []string{"-addr", addr, "-quiet"}, io.Discard, nil); c != 1 {
		t.Errorf("bind conflict exit = %d, want 1", c)
	}
	cancel()
	if c := <-code; c != 0 {
		t.Errorf("first daemon exit = %d, want 0", c)
	}
}
