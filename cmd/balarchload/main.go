// Command balarchload is the scenario load generator for
// balance-as-a-service: it drives a named workload mix (internal/loadgen)
// at a balarchd server — or at the API stack in process — and reports
// per-route latency quantiles, throughput, and error classes, with
// optional gates for CI.
//
// Usage:
//
//	balarchload -url http://127.0.0.1:8080 -scenario mixed-production -duration 20s
//	balarchload -inprocess -scenario sweep-stampede -requests 500 -workers 8
//	balarchload -url ... -rate 200 -duration 30s        # open-loop at 200 arrivals/s
//	balarchload -list                                   # scenario catalog
//
// The request sequence is deterministic in (-scenario, -seed): the same
// flags replay the same traffic byte-for-byte. Reports render as text by
// default, -json for the machine-readable report (same internal/report
// shapes as cmd/experiments). Gates: every run requires zero unexpected
// non-2xx responses; -max-p99 adds a per-route latency ceiling;
// -victim-max-p99 gates only the victim-tenant routes of the
// noisy-neighbor scenario (tenancy isolation: the abusive tenant's 429s
// are expected, the victim's latency is the claim); -crosscheck
// (meaningful against a freshly started server) requires the client-side
// quantiles to agree with the server's /metrics histograms within one
// bucket; -jobs-drain (for the async job-queue scenario) requires the job
// queue to drain with zero failed jobs within the given budget after the
// run; -gc-baseline-per1k caps this process's GC count per 1k requests at
// the recorded baseline + 20% (the soak guard against allocation
// regressions in the request path); -min-trace-coverage (with -trace,
// the default) requires the server to echo the trace id on at least
// that fraction of requests — the end-to-end proof that trace
// propagation survives the full middleware chain under load. Exit
// status: 0 all gates pass, 1 a gate failed, 2 the harness itself
// errored.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"balarch"
	"balarch/client"
	"balarch/internal/loadgen"
	"balarch/internal/server"
)

// main wires SIGINT cancellation and exits with run's code.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("balarchload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target server base URL (e.g. http://127.0.0.1:8080)")
	inprocess := fs.Bool("inprocess", false,
		"drive the API stack in process instead of a remote server")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"in-process server parallelism (only with -inprocess)")
	scenario := fs.String("scenario", "mixed-production", "workload mix (see -list)")
	duration := fs.Duration("duration", 20*time.Second, "run length")
	rate := fs.Float64("rate", 0,
		"open-loop arrivals per second (0 = closed loop: workers issue back-to-back)")
	workers := fs.Int("workers", 8, "concurrent request workers")
	seed := fs.Int64("seed", 1, "request-sequence seed (same seed = same traffic)")
	requests := fs.Int64("requests", 0, "stop after this many requests (0 = run for -duration)")
	retries := fs.Int("retries", 1, "client attempts per request (>1 retries 503s and transport errors)")
	wait := fs.Duration("wait", 5*time.Second,
		"how long the health preflight polls a just-started target before giving up")
	maxP99 := fs.Duration("max-p99", 0,
		"fail (exit 1) if any route's p99 exceeds this (0 = no gate); measures the client experience, so with -retries > 1 it includes retry attempts and backoff")
	victimP99 := fs.Duration("victim-max-p99", 0,
		"fail (exit 1) if any victim-tenant route's p99 exceeds this — the noisy-neighbor isolation gate (0 = no gate)")
	crosscheck := fs.Bool("crosscheck", false,
		"fetch /metrics after the run and require quantile agreement within one bucket (use against a fresh server)")
	gcBaseline := fs.Float64("gc-baseline-per1k", 0,
		"fail (exit 1) if this process's GC count per 1k requests exceeds this baseline by more than 20% (0 = no gate); counts the whole balarchload process, so with -inprocess it includes the server too")
	jobsDrain := fs.Duration("jobs-drain", 0,
		"zero-lost-jobs gate for async scenarios: after the run, poll /metrics up to this long for the job queue to drain (queued+running → 0) with no failures (0 = no gate)")
	fairnessDrain := fs.Duration("fairness-drain", 0,
		"scheduler-fairness gate for the backlog-fairness scenario: poll /metrics up to this long for the queue to drain, then require jobs_sched_max_wait_picks ≤ -fairness-max-wait and the minority tenant served (0 = no gate)")
	fairnessMaxWait := fs.Int64("fairness-max-wait", 8,
		"ceiling on jobs_sched_max_wait_picks for -fairness-drain: the most consecutive picks a tenant with eligible pending work may be bypassed")
	trace := fs.Bool("trace", true,
		"send a W3C traceparent on every request and record whether the server echoes it")
	minTraceCoverage := fs.Float64("min-trace-coverage", 0,
		"fail (exit 1) if fewer than this fraction (0..1] of traced requests had their trace id echoed back (0 = no gate; requires -trace)")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	list := fs.Bool("list", false, "list scenarios and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, sc := range loadgen.Scenarios() {
			fmt.Fprintf(stdout, "%-18s %s\n", sc.Name, sc.Description)
		}
		return 0
	}

	sc, err := loadgen.Get(*scenario)
	if err != nil {
		return fatal(stderr, err)
	}
	if *crosscheck && *retries > 1 {
		// Loadgen times the whole retrying call (attempts + backoff); the
		// server's histograms see individual attempts. The two are not
		// comparable, so the combination would fail spuriously.
		return fatal(stderr, fmt.Errorf("-crosscheck requires -retries 1: retried latencies include backoff the server never sees"))
	}
	// The tenancy scenarios are only meaningful against a tenanted
	// server; for -inprocess runs install the tenant set each assumes
	// (remote targets get theirs from balarchd -tenants-file).
	var tenants *server.TenantsConfig
	switch {
	case *inprocess && sc.Name == "noisy-neighbor":
		tenants = loadgen.NoisyNeighborTenants()
	case *inprocess && sc.Name == "backlog-fairness":
		tenants = loadgen.FairnessTenants()
	}
	if *minTraceCoverage > 0 && !*trace {
		return fatal(stderr, fmt.Errorf("-min-trace-coverage requires -trace: the gate measures traced requests"))
	}
	c, cleanup, err := buildClient(*url, *inprocess, *parallel, *retries, *trace, tenants)
	if err != nil {
		return fatal(stderr, err)
	}
	defer cleanup()
	// Preflight: an unreachable or unhealthy target is a harness error,
	// not a load-test finding. Poll for -wait so a just-started daemon
	// (ci/soak.sh boots one right before calling us) has time to bind.
	if _, err := c.WaitHealthy(ctx, *wait); err != nil {
		return fatal(stderr, err)
	}

	cfg := loadgen.Config{
		Scenario:    sc,
		Seed:        *seed,
		Duration:    *duration,
		Rate:        *rate,
		Workers:     *workers,
		MaxRequests: *requests,
	}
	if cfg.MaxRequests > 0 {
		cfg.Duration = 0 // a request cap runs to completion, not to a clock
	}
	sum, err := loadgen.Run(ctx, c, cfg)
	if err != nil {
		return fatal(stderr, err)
	}

	res := sum.Report()
	if *maxP99 > 0 {
		sum.AddP99Gate(res, *maxP99)
	}
	if *victimP99 > 0 {
		sum.AddVictimP99Gate(res, *victimP99)
	}
	if *gcBaseline > 0 {
		sum.AddGCGate(res, *gcBaseline)
	}
	if *minTraceCoverage > 0 {
		sum.AddTraceCoverageGate(res, *minTraceCoverage)
	}
	if *jobsDrain > 0 {
		loadgen.AddJobsDrainGate(ctx, res, c, *jobsDrain)
	}
	if *fairnessDrain > 0 {
		loadgen.AddFairnessGate(ctx, res, c, *fairnessDrain, *fairnessMaxWait)
	}
	if *crosscheck {
		m, err := c.Metrics(ctx)
		if err != nil {
			return fatal(stderr, fmt.Errorf("fetching /metrics for cross-check: %w", err))
		}
		loadgen.AddCrossCheckGate(res, sum, m)
	}

	if *asJSON {
		data, err := res.JSON()
		if err != nil {
			return fatal(stderr, err)
		}
		if _, err := stdout.Write(append(data, '\n')); err != nil {
			return fatal(stderr, err)
		}
	} else {
		if err := res.Render(stdout); err != nil {
			return fatal(stderr, err)
		}
		fmt.Fprintln(stdout)
	}

	verdict := "all gates pass"
	code := 0
	if !res.Pass() {
		verdict = "GATES FAILED"
		code = 1
	}
	fmt.Fprintf(stderr, "balarchload: %s/%s: %d requests in %.2fs (%.1f rps, %d unexpected): %s\n",
		sum.Scenario, sum.Mode, sum.Requests, sum.ElapsedSeconds, sum.ThroughputRPS,
		sum.Unexpected, verdict)
	return code
}

// buildClient resolves the target: a remote URL or the in-process stack.
// The in-process server gets a throwaway store directory so the async
// scenarios (job-queue) work against it too; cleanup removes it.
func buildClient(url string, inprocess bool, parallel, retries int, trace bool, tenants *server.TenantsConfig) (*client.Client, func(), error) {
	noop := func() {}
	var opts []client.Option
	if retries > 1 {
		opts = append(opts, client.WithRetry(retries, 50*time.Millisecond))
	}
	if trace {
		opts = append(opts, client.WithTracing())
	}
	switch {
	case inprocess && url != "":
		return nil, noop, fmt.Errorf("-url and -inprocess are mutually exclusive")
	case inprocess:
		dir, err := os.MkdirTemp("", "balarchload-store-*")
		if err != nil {
			return nil, noop, fmt.Errorf("creating in-process store dir: %w", err)
		}
		srv := balarch.NewServer(balarch.ServerOptions{
			Parallelism: parallel,
			StoreDir:    dir,
			Tenants:     tenants,
		})
		if err := srv.JobsErr(); err != nil {
			os.RemoveAll(dir)
			return nil, noop, fmt.Errorf("opening in-process job store: %w", err)
		}
		cleanup := func() {
			// Drain the queue before deleting the directory out from
			// under its workers.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Close(ctx)
			os.RemoveAll(dir)
		}
		return client.NewFromHandler(srv.Handler(), opts...), cleanup, nil
	case url != "":
		c, err := client.New(url, opts...)
		return c, noop, err
	default:
		return nil, noop, fmt.Errorf("need a target: -url or -inprocess")
	}
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "balarchload:", err)
	return 2
}
