package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"analyze-heavy", "sweep-stampede", "batch-burst", "experiment-replay", "mixed-production", "job-queue"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestInProcessRunPasses(t *testing.T) {
	code, out, errb := runCmd(t,
		"-inprocess", "-scenario", "analyze-heavy", "-requests", "50", "-workers", "4", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"[PASS]", "POST /v1/analyze", "0 unexpected of 50 requests"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errb, "all gates pass") {
		t.Errorf("stderr missing verdict: %q", errb)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, errb := runCmd(t,
		"-inprocess", "-scenario", "batch-burst", "-requests", "20", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	var res struct {
		ID     string `json:"id"`
		Claims []struct {
			Pass bool `json:"pass"`
		} `json:"claims"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%.300s", err, out)
	}
	if res.ID != "LOAD" || len(res.Claims) == 0 {
		t.Errorf("unexpected report: %+v", res)
	}
}

// TestCrossCheckGateInProcess runs enough traffic for the sample floor and
// requires the /metrics agreement gate to hold against the in-process
// server — the acceptance criterion's agreement check, in miniature.
func TestCrossCheckGateInProcess(t *testing.T) {
	code, out, errb := runCmd(t,
		"-inprocess", "-scenario", "analyze-heavy", "-requests", "200", "-workers", "4", "-crosscheck")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	if !strings.Contains(out, "agree with the server's /metrics histograms") {
		t.Errorf("report missing the cross-check claim:\n%s", out)
	}
}

// TestJobQueueScenarioWithDrainGate is the async soak phase in
// miniature: drive job-queue in process, then require the
// zero-lost-jobs gate to pass.
func TestJobQueueScenarioWithDrainGate(t *testing.T) {
	code, out, errb := runCmd(t,
		"-inprocess", "-scenario", "job-queue", "-requests", "80", "-workers", "4",
		"-jobs-drain", "30s")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	for _, want := range []string{"no jobs lost", "POST /v1/jobs", "[PASS]"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestP99GateFails(t *testing.T) {
	code, out, _ := runCmd(t,
		"-inprocess", "-scenario", "analyze-heavy", "-requests", "30", "-max-p99", "1ns")
	if code != 1 {
		t.Fatalf("exit %d, want 1 for an unmeetable p99 ceiling", code)
	}
	if !strings.Contains(out, "[FAIL]") {
		t.Errorf("report does not show the failing gate:\n%s", out)
	}
}

func TestHarnessErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"no target", []string{"-scenario", "analyze-heavy"}},
		{"both targets", []string{"-inprocess", "-url", "http://x", "-requests", "1"}},
		{"unknown scenario", []string{"-inprocess", "-scenario", "nope"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
		{"unreachable url", []string{"-url", "http://127.0.0.1:1", "-requests", "1", "-wait", "200ms"}},
		{"crosscheck with retries", []string{"-inprocess", "-requests", "1", "-crosscheck", "-retries", "3"}},
	} {
		if code, _, _ := runCmd(t, tc.args...); code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
	}
}

func TestOpenLoopFlag(t *testing.T) {
	code, out, errb := runCmd(t,
		"-inprocess", "-scenario", "analyze-heavy", "-duration", "300ms", "-rate", "100", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "open loop") {
		t.Errorf("report does not mention the open loop:\n%s", out)
	}
}
