package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"balarch/internal/server"
)

// startCluster boots two in-process nodes and a gateway over them,
// returning the gateway's base URL, a shutdown func, and its exit code.
func startCluster(t *testing.T) (string, context.CancelFunc, <-chan int) {
	t.Helper()
	n1 := httptest.NewServer(server.New(server.Options{Parallelism: 2, NodeID: "n1"}).Handler())
	t.Cleanup(n1.Close)
	n2 := httptest.NewServer(server.New(server.Options{Parallelism: 2, NodeID: "n2"}).Handler())
	t.Cleanup(n2.Close)

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet",
			"-nodes", n1.URL + "," + n2.URL}, io.Discard, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, code
	case c := <-code:
		cancel()
		t.Fatalf("gateway exited immediately with %d", c)
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("gateway never became ready")
	}
	return "", nil, nil
}

func TestGatewayServesAndShutsDownGracefully(t *testing.T) {
	base, cancel, code := startCluster(t)
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}
	if health["nodes"] != float64(2) || health["healthy"] != float64(2) {
		t.Fatalf("healthz cluster view = %v", health)
	}

	// One keyless request proxied through the TCP stack; the serving
	// node stamps its identity.
	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"pe": {"c": 50e6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`))
	if err != nil {
		t.Fatal(err)
	}
	var analysis map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&analysis); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || analysis["state"] != "io-bound" {
		t.Fatalf("analyze via gateway = %d %v", resp.StatusCode, analysis)
	}
	if node := resp.Header.Get(server.NodeHeader); node != "n1" && node != "n2" {
		t.Fatalf("%s = %q, want a node identity", server.NodeHeader, node)
	}

	cancel()
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("gateway exit code = %d, want 0", c)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway never exited")
	}
}

func TestGatewayRequiresNodes(t *testing.T) {
	if c := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-quiet"}, io.Discard, nil); c != 2 {
		t.Fatalf("run without -nodes = %d, want 2", c)
	}
}
