// Command balarchgw is the balarch cluster gateway: it fronts a fixed set
// of balarchd nodes (internal/cluster) as one service. Keyed traffic —
// sweeps, job submits and polls, experiment runs — rides a consistent-hash
// ring over the healthy members, so each sweep-memo entry and each durable
// job lives on exactly one node; keyless traffic (analyze, rebalance,
// roofline, emulation) places by power-of-two-choices on per-node in-flight
// counts; /v1/batch and /v1/experiments scatter-gather across the cluster;
// /metrics answers the node-shaped rollup of every member plus a cluster
// section.
//
// Usage:
//
//	balarchgw -nodes http://127.0.0.1:18091,http://127.0.0.1:18092
//	balarchgw -addr :8090 -nodes ... -probe-interval 2s -replicas 128
//
// Health is decided actively (each node's /healthz and /readyz polled every
// -probe-interval) and passively (a proxy transport error ejects the node
// immediately); an ejected node's keys deterministically remap to the
// survivors and map back when it rejoins. SIGINT/SIGTERM drain in-flight
// proxies before exit; a second signal kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"balarch/internal/cluster"
)

// main starts the gateway and exits 0 on clean shutdown, 1 on serve/bind
// failure, 2 on bad flags.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	os.Exit(run(ctx, os.Args[1:], os.Stderr, nil))
}

// run is main's testable body. If ready is non-nil it receives the bound
// address once the listener is up.
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("balarchgw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8090", "listen address")
	nodes := fs.String("nodes", "",
		"comma-separated member base URLs (e.g. http://127.0.0.1:18091,http://127.0.0.1:18092); required")
	replicas := fs.Int("replicas", 0, "virtual nodes per member on the hash ring (0 = 128)")
	probeInterval := fs.Duration("probe-interval", 2*time.Second,
		"active health-probe period (0 = default, negative disables; passive ejection always applies)")
	probeTimeout := fs.Duration("probe-timeout", time.Second, "one node's probe round-trip budget")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for batch and listing scatter-gather")
	maxBatch := fs.Int("max-batch", 64, "max requests per scatter-gathered /v1/batch call")
	maxBody := fs.Int64("max-body", 1<<20,
		"max buffered request body bytes (should match the nodes' -max-body)")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "connection read timeout")
	writeTimeout := fs.Duration("write-timeout", 120*time.Second, "connection write timeout")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second,
		"drain budget for in-flight proxies on SIGINT/SIGTERM")
	logLevel := fs.String("log-level", "info",
		"minimum log level: debug, info, warn, or error")
	logFormat := fs.String("log-format", "text", "log line format: text or json")
	quiet := fs.Bool("quiet", false, "disable logging entirely")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var members []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			members = append(members, strings.TrimRight(n, "/"))
		}
	}
	if len(members) == 0 {
		fmt.Fprintln(stderr, "balarchgw: -nodes is required (comma-separated member base URLs)")
		return 2
	}

	var level slog.Level
	switch *logLevel {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		fmt.Fprintf(stderr, "balarchgw: -log-level: unknown level %q (want debug, info, warn, or error)\n", *logLevel)
		return 2
	}
	var logger *slog.Logger
	if !*quiet {
		hopts := &slog.HandlerOptions{Level: level}
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(stderr, hopts))
		case "json":
			logger = slog.New(slog.NewJSONHandler(stderr, hopts))
		default:
			fmt.Fprintf(stderr, "balarchgw: -log-format: unknown format %q (want text or json)\n", *logFormat)
			return 2
		}
	}

	gw, err := cluster.New(cluster.Options{
		Nodes:         members,
		Replicas:      *replicas,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		MaxBodyBytes:  *maxBody,
		MaxBatch:      *maxBatch,
		Parallelism:   *parallel,
		Logger:        logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "balarchgw: %v\n", err)
		return 1
	}
	defer gw.Close()

	httpSrv := &http.Server{
		Handler:      gw.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "balarchgw: %v\n", err)
		return 1
	}
	if logger != nil {
		logger.Info("gateway serving", "addr", ln.Addr().String(), "nodes", len(members))
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "balarchgw: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	if logger != nil {
		logger.Info("shutting down", "grace", *shutdownGrace)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = httpSrv.Close()
		fmt.Fprintf(stderr, "balarchgw: shutdown: %v\n", err)
		return 1
	}
	return 0
}
