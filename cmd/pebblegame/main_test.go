package main

import "testing"

func TestBuildDAG(t *testing.T) {
	cases := []struct {
		kind     string
		n, iters int
		wantLen  int
	}{
		{"fft", 8, 0, 32},
		{"matmul", 2, 0, 2*4 + 8 + 4},
		{"tree", 4, 0, 7},
		{"chain", 5, 0, 5},
		{"diamond", 2, 0, 7},
		{"stencil", 5, 2, 15},
		{"stencil2d", 4, 2, 48},
	}
	for _, tc := range cases {
		d, err := buildDAG(tc.kind, tc.n, tc.iters)
		if err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if d.Len() != tc.wantLen {
			t.Errorf("%s: Len = %d, want %d", tc.kind, d.Len(), tc.wantLen)
		}
	}
	if _, err := buildDAG("hypercube", 4, 0); err == nil {
		t.Error("unknown dag kind accepted")
	}
	if _, err := buildDAG("fft", 12, 0); err == nil {
		t.Error("invalid size accepted")
	}
}
