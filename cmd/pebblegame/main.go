// Command pebblegame plays the Hong–Kung red-blue pebble game on a chosen
// DAG and reports the I/O of the greedy, blocked (FFT) and exhaustively
// optimal strategies against the closed-form lower bounds.
//
// Usage:
//
//	pebblegame -dag fft -n 16 -s 6
//	pebblegame -dag matmul -n 4 -s 16
//	pebblegame -dag tree -n 8 -s 3 -optimal
package main

import (
	"flag"
	"fmt"
	"os"

	"balarch/internal/pebble"
	"balarch/internal/textplot"
)

// main parses the game flags, plays each requested strategy on the chosen
// DAG, prints the I/O counts against the lower bounds, and exits 0 (2 on
// bad flags).
func main() {
	kind := flag.String("dag", "fft", "graph: fft, matmul, tree, chain, diamond, stencil, stencil2d")
	n := flag.Int("n", 16, "problem size (points, matrix dim, leaves, length, depth, width)")
	s := flag.Int("s", 6, "red pebbles (local memory words)")
	iters := flag.Int("iters", 2, "iterations (stencil only)")
	block := flag.Int("block", 4, "block size for the blocked FFT strategy")
	optimal := flag.Bool("optimal", false, "also run the exhaustive optimum (tiny DAGs only)")
	flag.Parse()

	dag, err := buildDAG(*kind, *n, *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dag=%s n=%d vertices=%d inputs=%d outputs=%d maxInDegree=%d\n\n",
		*kind, *n, dag.Len(), len(dag.Inputs()), len(dag.Outputs()), dag.MaxInDegree())

	tb := textplot.NewTable("strategy", "S", "I/O", "peak red", "computes")
	sched, err := pebble.GreedySchedule(dag, *s)
	if err != nil {
		fatal(err)
	}
	res, err := pebble.Execute(dag, *s, sched)
	if err != nil {
		fatal(err)
	}
	tb.AddRow("greedy (Belady eviction)", *s, res.IO(), res.PeakRed, res.Computes)

	if *kind == "fft" {
		bsched, bs, err := pebble.BlockedFFTSchedule(*n, *block)
		if err == nil {
			bres, err := pebble.Execute(dag, bs, bsched)
			if err != nil {
				fatal(err)
			}
			tb.AddRow(fmt.Sprintf("blocked (Fig. 2, M=%d)", *block), bs, bres.IO(), bres.PeakRed, bres.Computes)
		}
	}
	if *optimal {
		opt, err := pebble.OptimalIO(dag, *s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optimal search:", err)
		} else {
			tb.AddRow("exhaustive optimum", *s, opt, "-", "-")
		}
	}
	fmt.Print(tb.String())

	fmt.Printf("\ntrivial lower bound (inputs+outputs): %d\n", pebble.TrivialLowerBound(dag))
	switch *kind {
	case "fft":
		fmt.Printf("Hong-Kung FFT bound at S=%d: %.1f\n", *s, pebble.FFTLowerBound(*n, *s))
	case "matmul":
		fmt.Printf("matmul I/O bound at S=%d: %.1f\n", *s, pebble.MatMulLowerBound(*n, *s))
	}
}

func buildDAG(kind string, n, iters int) (*pebble.DAG, error) {
	switch kind {
	case "fft":
		return pebble.FFTDAG(n)
	case "matmul":
		return pebble.MatMulDAG(n)
	case "tree":
		return pebble.BinaryTreeDAG(n)
	case "chain":
		return pebble.ChainDAG(n)
	case "diamond":
		return pebble.DiamondDAG(n)
	case "stencil":
		return pebble.Stencil1DDAG(n, iters)
	case "stencil2d":
		return pebble.Stencil2DDAG(n, iters)
	default:
		return nil, fmt.Errorf("unknown dag kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pebblegame:", err)
	os.Exit(2)
}
