// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments               # run all experiments, print reports
//	experiments -id E2        # run one experiment
//	experiments -id E2 -json  # emit the result as JSON
//	experiments -id E2 -csv ratio  # emit one data series as CSV
//	experiments -list         # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"balarch/internal/experiments"
)

func main() {
	id := flag.String("id", "", "experiment id (E1..E12); empty runs all")
	asJSON := flag.Bool("json", false, "emit JSON instead of text")
	csvSeries := flag.String("csv", "", "emit the named data series as CSV")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := experiments.Registry()
	if *id != "" {
		exp, err := experiments.Get(*id)
		if err != nil {
			fatal(err)
		}
		run = []experiments.Experiment{exp}
	}

	failed := false
	for _, exp := range run {
		res, err := exp.Run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.ID, err))
		}
		switch {
		case *asJSON:
			data, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
		case *csvSeries != "":
			if err := res.WriteCSV(os.Stdout, *csvSeries); err != nil {
				fatal(fmt.Errorf("%s: %v (have: %v)", exp.ID, err, res.SeriesNames()))
			}
		default:
			if err := res.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if !res.Pass() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}
