// Command experiments reproduces the paper's tables and figures.
//
// Usage:
//
//	experiments               # run all experiments in parallel, print reports
//	experiments -parallel 1   # the same suite, strictly serial
//	experiments -id E2        # run one experiment
//	experiments -id E2 -json  # emit the result as JSON
//	experiments -id E2 -csv ratio  # emit one data series as CSV
//	experiments -list         # list experiment ids and titles
//
// Reports always print in experiment-id order and are byte-identical
// whatever -parallel is; the wall-clock summary goes to stderr so stdout
// stays machine-readable. Exit status: 0 all claims pass, 1 a claim
// failed, 2 the harness itself errored.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"balarch/internal/engine"
	"balarch/internal/experiments"
	"balarch/internal/report"
)

// main wires SIGINT cancellation into the harness and exits with run's
// code: 0 all claims pass, 1 a claim failed, 2 the harness errored.
func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: it parses args, runs the requested
// experiments, and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("id", "", "experiment id (E1..E12, X1..X4); empty runs all")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	csvSeries := fs.String("csv", "", "emit the named data series as CSV")
	list := fs.Bool("list", false, "list experiments and exit")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker count for the experiment suite (1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	start := time.Now()
	var results []*report.Result
	if *id != "" {
		exp, err := experiments.Get(*id)
		if err != nil {
			return fatal(stderr, err)
		}
		// Propagate -parallel to the experiment's sweep pools too, so
		// -id X -parallel 1 is a genuinely serial run.
		res, err := exp.Run(engine.WithParallelism(ctx, *parallel))
		if err != nil {
			return fatal(stderr, fmt.Errorf("%s: %w", exp.ID, err))
		}
		results = []*report.Result{res}
	} else {
		var err error
		results, _, err = experiments.RunAll(ctx, *parallel)
		if err != nil {
			return fatal(stderr, err)
		}
	}

	for _, res := range results {
		if err := writeResult(stdout, res, *asJSON, *csvSeries); err != nil {
			return fatal(stderr, err)
		}
	}
	code := exitFor(results)
	fmt.Fprintf(stderr, "experiments: %d experiment(s) in %.2fs (parallel %d): %s\n",
		len(results), time.Since(start).Seconds(), *parallel, verdict(code))
	return code
}

// writeResult renders one result per the output flags.
func writeResult(w io.Writer, res *report.Result, asJSON bool, csvSeries string) error {
	switch {
	case asJSON:
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	case csvSeries != "":
		if err := res.WriteCSV(w, csvSeries); err != nil {
			return fmt.Errorf("%s: %w (have: %v)", res.ID, err, res.SeriesNames())
		}
		return nil
	default:
		if err := res.Render(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
}

// exitFor returns the suite's exit code: 1 if any claim failed, else 0.
func exitFor(results []*report.Result) int {
	for _, res := range results {
		if !res.Pass() {
			return 1
		}
	}
	return 0
}

func verdict(code int) string {
	if code == 0 {
		return "all claims pass"
	}
	return "CLAIMS FAILED"
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "experiments:", err)
	return 2
}
