package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"balarch/internal/report"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"E1", "E12", "X4"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

func TestRunOneText(t *testing.T) {
	code, out, errb := runCmd(t, "-id", "E5")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "== E5:") || !strings.Contains(out, "[PASS]") {
		t.Errorf("unexpected report:\n%s", out)
	}
	if !strings.Contains(errb, "1 experiment(s)") {
		t.Errorf("missing wall-clock summary on stderr: %q", errb)
	}
}

func TestRunOneJSON(t *testing.T) {
	code, out, _ := runCmd(t, "-id", "E5", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, `"id": "E5"`) {
		t.Errorf("JSON output missing id:\n%.200s", out)
	}
}

func TestRunOneCSV(t *testing.T) {
	code, out, _ := runCmd(t, "-id", "E5", "-csv", "ratio")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(out, "memory_words,") {
		t.Errorf("CSV output missing header:\n%.120s", out)
	}
}

func TestUnknownID(t *testing.T) {
	code, _, errb := runCmd(t, "-id", "E99")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "E99") {
		t.Errorf("stderr does not name the unknown id: %q", errb)
	}
}

func TestUnknownCSVSeries(t *testing.T) {
	code, _, errb := runCmd(t, "-id", "E5", "-csv", "nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "have:") {
		t.Errorf("stderr does not list available series: %q", errb)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCmd(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

// TestParallelSuiteDeterministic is the CLI-level determinism gate: the
// whole suite at -parallel 4 must write byte-identical JSON to -parallel 1,
// and exit 0.
func TestParallelSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice; skipped in -short")
	}
	codeSerial, outSerial, _ := runCmd(t, "-parallel", "1", "-json")
	if codeSerial != 0 {
		t.Fatalf("serial suite exit %d", codeSerial)
	}
	codePar, outPar, _ := runCmd(t, "-parallel", "4", "-json")
	if codePar != 0 {
		t.Fatalf("parallel suite exit %d", codePar)
	}
	if outSerial != outPar {
		t.Error("-parallel 4 JSON differs from -parallel 1")
	}
}

func TestExitForFailingClaim(t *testing.T) {
	ok := &report.Result{ID: "T1"}
	ok.AddClaim("s", "e", "m", true)
	bad := &report.Result{ID: "T2"}
	bad.AddClaim("s", "e", "m", false)
	if got := exitFor([]*report.Result{ok}); got != 0 {
		t.Errorf("all-pass exit = %d, want 0", got)
	}
	if got := exitFor([]*report.Result{ok, bad}); got != 1 {
		t.Errorf("failing-claim exit = %d, want 1", got)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb bytes.Buffer
	if code := run(ctx, []string{"-parallel", "2"}, &out, &errb); code != 2 {
		t.Errorf("cancelled run exit %d, want 2", code)
	}
}
