package main

// Golden-file coverage of the command's text rendering and the exit-code
// contract. The text report is the tool's user interface; formatting
// changes must be deliberate — regenerate with
//
//	go test ./cmd/experiments -run Golden -update
//
// The exit-code contract (0 = all claims pass, 1 = a claim failed, 2 = the
// harness errored) is what ci and scripts build on, so it is pinned with
// injected experiments rather than trusted to stay true by accident.

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"balarch/internal/experiments"
	"balarch/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file (regenerate with -update if deliberate)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenE1Text pins the full text rendering of the analytic summary
// experiment: claims, the §3 law table, and the growth chart.
func TestGoldenE1Text(t *testing.T) {
	code, out, errb := runCmd(t, "-id", "E1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	checkGolden(t, "e1_text", out)
}

// TestGoldenE7Text pins the I/O-bounded experiment's rendering (tables of
// flat ratios and the impossibility claims).
func TestGoldenE7Text(t *testing.T) {
	code, out, errb := runCmd(t, "-id", "E7")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	checkGolden(t, "e7_text", out)
}

// TestGoldenListText pins the -list catalog.
func TestGoldenListText(t *testing.T) {
	code, out, errb := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	checkGolden(t, "list_text", out)
}

// TestExitCodeContract drives run() through all three exit codes with
// injected experiments: a passing suite is 0 (covered throughout this
// file), a failing *claim* — a report that renders fine but contradicts
// the paper — is 1, and a harness error is 2.
func TestExitCodeContract(t *testing.T) {
	removeFail, err := experiments.Register(experiments.Experiment{
		ID:    "ZFAIL",
		Title: "injected failing claim",
		Run: func(context.Context) (*report.Result, error) {
			res := &report.Result{ID: "ZFAIL", Title: "injected failing claim", PaperLocus: "test"}
			res.AddClaim("the injected claim holds", "pass", "deliberately failed", false)
			return res, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer removeFail()
	removeErr, err := experiments.Register(experiments.Experiment{
		ID:    "ZERR",
		Title: "injected harness error",
		Run: func(context.Context) (*report.Result, error) {
			return nil, errors.New("injected failure before any claim was measured")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer removeErr()

	code, out, errb := runCmd(t, "-id", "ZFAIL")
	if code != 1 {
		t.Errorf("failing claim: exit %d, want 1 (stderr %q)", code, errb)
	}
	if !strings.Contains(out, "[FAIL]") || !strings.Contains(errb, "CLAIMS FAILED") {
		t.Errorf("failing claim not rendered: stdout %q stderr %q", out, errb)
	}

	code, _, errb = runCmd(t, "-id", "ZERR")
	if code != 2 {
		t.Errorf("erroring experiment: exit %d, want 2", code)
	}
	if !strings.Contains(errb, "ZERR") {
		t.Errorf("stderr does not name the erroring experiment: %q", errb)
	}

	// And the whole suite must propagate a failing claim as exit 1 (with
	// the erroring injection removed first — an error would win as exit 2).
	removeErr()
	code, _, errb = runCmd(t, "-parallel", "2")
	if code != 1 {
		t.Errorf("suite with injected failing claim: exit %d, want 1 (stderr %q)", code, errb)
	}
}

// TestRegisterContract covers the registration seam itself.
func TestRegisterContract(t *testing.T) {
	if _, err := experiments.Register(experiments.Experiment{ID: ""}); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := experiments.Register(experiments.Experiment{
		ID: "E1", Run: func(context.Context) (*report.Result, error) { return nil, nil },
	}); err == nil {
		t.Error("duplicate id accepted")
	}
	remove, err := experiments.Register(experiments.Experiment{
		ID: "ZTMP", Title: "t",
		Run: func(context.Context) (*report.Result, error) { return &report.Result{ID: "ZTMP"}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Get("ZTMP"); err != nil {
		t.Errorf("registered experiment not gettable: %v", err)
	}
	remove()
	if _, err := experiments.Get("ZTMP"); err == nil {
		t.Error("removed experiment still gettable")
	}
}
