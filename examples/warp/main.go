// Warp: the paper's §5 case study. The CMU Warp machine's cells have
// C = 10 MFLOPS, IO = 20 Mwords/s, and 64K words of local memory; the paper
// remarks that "having a rather large I/O bandwidth and a relatively large
// local memory for each PE of the Warp machine reflects the results of this
// paper". This example quantifies that remark with the model.
package main

import (
	"fmt"

	"balarch"
)

func main() {
	cell := balarch.Warp()
	fmt.Println("CMU Warp (1985), per cell:", cell)
	fmt.Printf("cells: %d (linear array)\n", balarch.WarpCells)
	fmt.Printf("per-cell intensity C/IO = %.3g — the channel can feed two words per flop\n\n", cell.Intensity())

	// One cell: which computations is it balanced for at 64K words?
	fmt.Println("single cell at 64K words:")
	for _, comp := range balarch.Catalog() {
		a, err := balarch.Analyze(cell, comp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-34s %s\n", comp.Name, a.State)
	}

	// The 10-cell array viewed as the paper's "new processing element":
	// C grows ×10, boundary I/O stays — aggregate intensity 5.
	agg := balarch.PE{
		C:  float64(balarch.WarpCells) * cell.C,
		IO: cell.IO,
		M:  float64(balarch.WarpCells) * cell.M,
	}
	fmt.Printf("\n10-cell array as one PE: %s (intensity %.3g)\n", agg, agg.Intensity())
	fmt.Printf("%-36s %18s %14s\n", "computation", "M needed (words)", "headroom")
	for _, comp := range balarch.Catalog() {
		a, err := balarch.Analyze(agg, comp)
		if err != nil {
			panic(err)
		}
		if a.Rebalanceable {
			fmt.Printf("%-36s %18.4g %13.3gx\n", comp.Name, a.BalancedMemory, agg.M/a.BalancedMemory)
		} else {
			fmt.Printf("%-36s %18s %14s\n", comp.Name, "unreachable", "I/O bound")
		}
	}
	fmt.Println("\nThe matrix kernels need tens of words against 640K available —")
	fmt.Println("Warp's designers bought balance with bandwidth, exactly as §5 observes.")
}
