// Roofline: read Kung's balance model as its modern descendant. Attainable
// performance is min(C, IO·I) at operational intensity I; in the paper's
// world I is not free — it is R(M), a function of local memory — so each
// computation climbs the roofline as M grows. Matrix kernels reach the
// ridge at M = (C/IO)² words; FFT and sorting crawl up logarithmically;
// matvec never leaves the bandwidth slope.
package main

import (
	"fmt"

	"balarch"
)

func main() {
	pe := balarch.PE{C: 64e6, IO: 1e6, M: 4096} // ridge at I = 64 ops/word
	rl, err := balarch.Roofline(pe)
	if err != nil {
		panic(err)
	}
	fmt.Printf("PE: %s\nridge intensity C/IO = %.4g ops/word\n\n", pe, rl.RidgeIntensity())

	comps := []balarch.Computation{
		balarch.MatrixMultiplication(),
		balarch.Grid(3),
		balarch.FFT(),
		balarch.Sorting(),
		balarch.MatrixVector(),
	}
	fmt.Printf("%-34s %16s %18s\n", "computation", "M to reach ridge", "efficiency at 4096")
	for _, c := range comps {
		eff := rl.Efficiency(c, pe.M)
		ridgeM, err := rl.MemoryAtRidge(c, 1e18)
		if err != nil {
			fmt.Printf("%-34s %16s %17.1f%%\n", c.Name, "never", 100*eff)
			continue
		}
		fmt.Printf("%-34s %16.4g %17.1f%%\n", c.Name, ridgeM, 100*eff)
	}

	chart, err := rl.Chart(comps, 16, 1<<22)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println(chart)
	fmt.Println("every computation walks the same roofline, but memory moves them at")
	fmt.Println("different speeds: that differential is the content of Kung's paper.")
}
