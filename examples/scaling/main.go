// Scaling: reproduce the paper's growth laws from measured counters rather
// than from the closed forms — run the instrumented kernels across local
// memory sizes, fit the ratio curves, and invert the fits to answer the
// rebalancing question empirically.
package main

import (
	"context"
	"fmt"
	"math"

	"balarch/internal/fit"
	"balarch/internal/kernels"
)

func main() {
	ctx := context.Background()
	fmt.Println("measured compute-to-I/O ratio curves and the growth laws they imply")
	fmt.Println()

	// Matrix multiplication: R(M) ~ √M.
	mm, err := kernels.MatMulRatioSweep(ctx, 16384, []int{8, 16, 32, 64, 128, 256})
	check(err)
	reportPower("matrix multiplication (§3.1)", mm, 2)

	// Triangularization: R(M) ~ √M.
	lu, err := kernels.LURatioSweep(ctx, 2048, []int{16, 32, 64, 128, 256})
	check(err)
	reportPower("matrix triangularization (§3.2)", lu, 2)

	// 3-D grid: R(M) ~ M^(1/3).
	var g3 []kernels.RatioPoint
	for _, tile := range []int{4, 8, 16, 32} {
		spec := kernels.GridSpec{Dim: 3, Size: 256, Tile: tile, Iters: 1}
		tot, err := kernels.CountRelaxTiled(spec)
		check(err)
		g3 = append(g3, kernels.RatioPoint{Memory: spec.TileVolume(), Totals: tot})
	}
	reportPower("3-D grid relaxation (§3.3)", g3, 3)

	// FFT: R(M) ~ log₂M — exponential memory growth.
	ff, err := kernels.FFTRatioSweep(ctx, 1<<20, []int{4, 16, 32, 1024})
	check(err)
	reportLog("fast Fourier transform (§3.4)", ff)

	// Sorting: R(M) ~ log₂M.
	so, err := kernels.SortRatioSweep(ctx, []int{16, 64, 256}, 7)
	check(err)
	reportLog("external sorting (§3.5)", so)

	// Matvec: flat — the impossibility result.
	mv, err := kernels.MatVecRatioSweep(ctx, 2048, []int{16, 64, 256, 1024})
	check(err)
	fmt.Println("matrix-vector multiplication (§3.6):")
	for _, p := range mv {
		fmt.Printf("  M=%6d  R=%.4f\n", p.Memory, p.Ratio())
	}
	fmt.Println("  ratio pinned at ≤ 2 across a 64× memory range: enlarging local")
	fmt.Println("  memory cannot rebalance an I/O-bounded computation.")
}

func reportPower(name string, pts []kernels.RatioPoint, degree float64) {
	xs, ys := split(pts)
	pl, err := fit.FitPowerLaw(xs, ys)
	check(err)
	fmt.Printf("%s:\n", name)
	for _, p := range pts {
		fmt.Printf("  M=%8d  R=%9.3f\n", p.Memory, p.Ratio())
	}
	fmt.Printf("  fitted R(M) ∝ M^%.3f (R²=%.4f) ⇒ α-rebalance multiplies M by α^%.2f\n",
		pl.Exponent, pl.R2, 1/pl.Exponent)
	fmt.Printf("  paper's law: M_new = α^%g·M_old\n\n", degree)
}

func reportLog(name string, pts []kernels.RatioPoint) {
	xs, ys := split(pts)
	lg, err := fit.FitLogarithmic(xs, ys)
	check(err)
	fmt.Printf("%s:\n", name)
	for _, p := range pts {
		fmt.Printf("  M=%8d  R=%9.3f\n", p.Memory, p.Ratio())
	}
	// Doubling the target ratio squares the memory (up to the offset).
	m0 := xs[0]
	m1 := math.Pow(2, (2*lg.Eval(m0)-lg.Offset)/lg.Scale)
	fmt.Printf("  fitted R(M) = %.3f·log₂M %+.3f ⇒ α=2 takes M from %.0f to %.0f (≈ M^2)\n",
		lg.Scale, lg.Offset, m0, m1)
	fmt.Printf("  paper's law: M_new = M_old^α (exponential)\n\n")
}

func split(pts []kernels.RatioPoint) (xs, ys []float64) {
	for _, p := range pts {
		xs = append(xs, float64(p.Memory))
		ys = append(ys, p.Ratio())
	}
	return
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
