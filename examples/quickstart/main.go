// Quickstart: model a processing element and ask the paper's central
// question — if the compute-to-I/O bandwidth ratio grows by α, how much
// local memory restores balance? Then the same question asked of the
// service, asynchronously: a sweep submitted as a durable job through
// the SDK, polled to completion, its result fetched from the
// content-addressed store.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"balarch"
	"balarch/client"
)

func main() {
	// A PE like the paper's motivating example: a fast floating-point
	// engine behind a modest channel. Intensity C/IO = 50.
	pe := balarch.PE{C: 50e6, IO: 1e6, M: 4096}
	fmt.Println("processing element:", pe)
	fmt.Printf("machine intensity C/IO = %.4g\n\n", pe.Intensity())

	// Diagnose it against every computation in the paper's catalog.
	fmt.Println("balance diagnosis per computation:")
	for _, comp := range balarch.Catalog() {
		a, err := balarch.Analyze(pe, comp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-34s R(M)=%8.4g  %-40s", comp.Name, a.AchievableRatio, a.State)
		if a.Rebalanceable {
			fmt.Printf("  balance needs M ≥ %.4g words\n", a.BalancedMemory)
		} else {
			fmt.Printf("  cannot balance at any memory size\n")
		}
	}

	// The rebalancing question for α = 2, 4, 8 — the paper's summary
	// table as numbers.
	fmt.Println("\nM_new/M_old after C/IO grows by α (M_old = 4096 words, closed-form laws):")
	fmt.Printf("  %-34s %10s %12s %14s\n", "computation", "α=2", "α=4", "α=8")
	for _, comp := range balarch.Catalog() {
		fmt.Printf("  %-34s", comp.Name)
		for _, alpha := range []float64{2, 4, 8} {
			mNew, err := comp.RebalanceClosedForm(alpha, 4096)
			switch {
			case errors.Is(err, balarch.ErrNotRebalanceable):
				fmt.Printf(" %13s", "impossible")
			case err != nil:
				panic(err)
			default:
				fmt.Printf(" %13.4g", mNew/4096)
			}
		}
		fmt.Printf("   (%s)\n", comp.Law.Describe())
	}

	// Cross-check one row numerically: inverting the measured ratio
	// function gives the same answer as the closed form.
	numeric, err := balarch.MatrixMultiplication().Rebalance(4, 4096, balarch.DefaultMaxMemory)
	if err != nil {
		panic(err)
	}
	closed, err := balarch.MatrixMultiplication().RebalanceClosedForm(4, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnumeric inversion cross-check (matmul, α=4): %.6g vs closed form %.6g\n", numeric, closed)

	hierarchyLeg()
	asyncSweep()
}

// hierarchyLeg lifts the question to a real machine shape: a multi-level
// memory hierarchy, where each adjacent-level boundary gets the paper's
// balance test against the cumulative capacity inside it. A machine can be
// cache-balanced yet disk-I/O-bound; the binding boundary names the fix.
func hierarchyLeg() {
	h := balarch.Hierarchy{C: 1e9, Levels: []balarch.Level{
		{Name: "sram", BW: 4e9, M: 1 << 10},
		{Name: "dram", BW: 1e9, M: 256 << 10},
		{Name: "disk", BW: 100e3, M: 64 << 20},
	}}
	fmt.Printf("\nmulti-level machine: %s\n", h)
	a, err := balarch.AnalyzeHierarchy(h, balarch.MatrixMultiplication())
	if err != nil {
		panic(err)
	}
	for _, b := range a.Boundaries {
		fmt.Printf("  boundary %d (%s): C/BW=%-8.4g R(W)=%-8.4g %s\n",
			b.Boundary, b.Level.Name, b.Intensity, b.AchievableRatio, b.State)
	}
	fmt.Printf("  binding boundary: %d (%s) — machine is %s\n",
		a.Binding, a.BindingBoundary().Level.Name, a.State)

	// The rebalancing question, hierarchy-wise: double the compute rate
	// and price the per-level memory bill that restores balance.
	r, err := balarch.RebalanceHierarchy(h, balarch.MatrixMultiplication(), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("  memory bill for α = 2:")
	for _, l := range r.Bill {
		fmt.Printf("    %-5s %.4g → %.4g words (+%.4g)\n", l.Level.Name, l.Level.M, l.MNew, l.Delta)
	}
	fmt.Printf("  total: %.4g words (+%.4g)\n", r.TotalMemory, r.TotalDelta)
}

// asyncSweep submits a measured kernel sweep as a durable job against an
// in-process instance of the balance-as-a-service API — the same flow a
// remote client uses against `balarchd -store-dir …`, minus the socket.
func asyncSweep() {
	dir, err := os.MkdirTemp("", "balarch-quickstart-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	// In production: c, err := client.New("http://host:8080")
	srv := balarch.NewServer(balarch.ServerOptions{StoreDir: dir})
	if err := srv.JobsErr(); err != nil {
		panic(err)
	}
	ctx := context.Background()
	defer srv.Close(ctx) // drain the queue before the temp dir goes away
	c := client.NewFromHandler(srv.Handler())

	body, err := json.Marshal(client.SweepRequest{Kernel: "matmul", N: 128, Params: []int{4, 8, 16, 32}})
	if err != nil {
		panic(err)
	}
	job, err := c.SubmitJob(ctx, &client.JobSubmitRequest{Op: "sweep", Request: body})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nasync sweep submitted: job %s (%s, journaled before the ack)\n", job.ID, job.State)

	done, err := c.WaitForJob(ctx, job.ID, 0)
	if err != nil {
		panic(err)
	}
	raw, err := c.JobResult(ctx, done.ID)
	if err != nil {
		panic(err)
	}
	var res client.SweepResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		panic(err)
	}
	fmt.Printf("job %s done: measured matmul ratio curve (block side → ops/word):\n", done.ID)
	for _, p := range res.Points {
		fmt.Printf("  M=%5d  R=%.4g\n", p.Memory, p.Ratio)
	}

	// Identical request, resubmitted: answered from the content-addressed
	// store — state "done" on arrival, kernels untouched.
	again, err := c.SubmitJob(ctx, &client.JobSubmitRequest{Op: "sweep", Request: body})
	if err != nil {
		panic(err)
	}
	fmt.Printf("identical resubmit: job %s is already %s — deduplicated, not re-executed\n",
		again.ID, again.State)
}
