// Quickstart: model a processing element and ask the paper's central
// question — if the compute-to-I/O bandwidth ratio grows by α, how much
// local memory restores balance?
package main

import (
	"errors"
	"fmt"

	"balarch"
)

func main() {
	// A PE like the paper's motivating example: a fast floating-point
	// engine behind a modest channel. Intensity C/IO = 50.
	pe := balarch.PE{C: 50e6, IO: 1e6, M: 4096}
	fmt.Println("processing element:", pe)
	fmt.Printf("machine intensity C/IO = %.4g\n\n", pe.Intensity())

	// Diagnose it against every computation in the paper's catalog.
	fmt.Println("balance diagnosis per computation:")
	for _, comp := range balarch.Catalog() {
		a, err := balarch.Analyze(pe, comp)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-34s R(M)=%8.4g  %-40s", comp.Name, a.AchievableRatio, a.State)
		if a.Rebalanceable {
			fmt.Printf("  balance needs M ≥ %.4g words\n", a.BalancedMemory)
		} else {
			fmt.Printf("  cannot balance at any memory size\n")
		}
	}

	// The rebalancing question for α = 2, 4, 8 — the paper's summary
	// table as numbers.
	fmt.Println("\nM_new/M_old after C/IO grows by α (M_old = 4096 words, closed-form laws):")
	fmt.Printf("  %-34s %10s %12s %14s\n", "computation", "α=2", "α=4", "α=8")
	for _, comp := range balarch.Catalog() {
		fmt.Printf("  %-34s", comp.Name)
		for _, alpha := range []float64{2, 4, 8} {
			mNew, err := comp.RebalanceClosedForm(alpha, 4096)
			switch {
			case errors.Is(err, balarch.ErrNotRebalanceable):
				fmt.Printf(" %13s", "impossible")
			case err != nil:
				panic(err)
			default:
				fmt.Printf(" %13.4g", mNew/4096)
			}
		}
		fmt.Printf("   (%s)\n", comp.Law.Describe())
	}

	// Cross-check one row numerically: inverting the measured ratio
	// function gives the same answer as the closed form.
	numeric, err := balarch.MatrixMultiplication().Rebalance(4, 4096, balarch.DefaultMaxMemory)
	if err != nil {
		panic(err)
	}
	closed, err := balarch.MatrixMultiplication().RebalanceClosedForm(4, 4096)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnumeric inversion cross-check (matmul, α=4): %.6g vs closed form %.6g\n", numeric, closed)
}
