// Externalsort: the paper's §3.5 two-phase sort live — sort a million keys
// through a small "local memory", watch the comparisons-per-word ratio track
// log₂M, and see the merge structure the M-way heap produces.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"balarch/internal/kernels"
	"balarch/internal/opcount"
)

func main() {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(3))
	input := make([]int64, n)
	for i := range input {
		input[i] = rng.Int63()
	}

	fmt.Printf("sorting %d random keys with the two-phase external scheme\n\n", n)
	fmt.Printf("%8s %8s %12s %14s %10s %12s\n",
		"M words", "runs", "merge passes", "comparisons", "I/O words", "R=comp/word")
	for _, m := range []int{64, 256, 1024, 4096} {
		spec := kernels.SortSpec{N: n, M: m}
		var c opcount.Counter
		out, err := kernels.ExternalSort(spec, input, &c)
		if err != nil {
			panic(err)
		}
		for i := 1; i < len(out); i++ {
			if out[i-1] > out[i] {
				panic("not sorted")
			}
		}
		runs := (n + m - 1) / m
		fmt.Printf("%8d %8d %12d %14d %10d %12.3f\n",
			m, runs, spec.MergePasses(), c.Ccomp(), c.Cio(), c.Ratio())
	}
	fmt.Println()
	fmt.Println("R grows with log₂M (≈ one heap comparison level per factor of two):")
	for _, m := range []int{64, 4096} {
		fmt.Printf("  log₂%d = %.0f\n", m, math.Log2(float64(m)))
	}
	fmt.Println()
	fmt.Println("the paper's conclusion: to raise R by α, M must be raised to the power α —")
	fmt.Println("sorting cannot enjoy substantial speedups without more I/O bandwidth (§5).")
}
