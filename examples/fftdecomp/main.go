// Fftdecomp: reproduce the paper's Fig. 2 — a 16-point FFT decomposed into
// subcomputation blocks that each fit a 4-word local memory, with results
// shuffled between passes — then verify the blocked execution is
// bit-identical to the in-core FFT while counting its arithmetic and I/O.
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"balarch/internal/kernels"
	"balarch/internal/opcount"
	"balarch/internal/textplot"
)

func main() {
	const n, m = 16, 4
	spec := kernels.FFTSpec{N: n, Block: m}

	dec, err := kernels.DecomposeFFT(spec)
	check(err)
	passes := make([][]textplot.FFTBlock, len(dec.Passes))
	for i, p := range dec.Passes {
		for _, blk := range p.Blocks {
			passes[i] = append(passes[i], blk)
		}
	}
	fmt.Print(textplot.Fig2FFT(n, passes))

	// Execute the decomposition on a real signal and verify it.
	x := make([]complex128, n)
	for i := range x {
		// Two tones: bins 1 and 5.
		t := float64(i) / n
		x[i] = complex(math.Sin(2*math.Pi*t)+0.5*math.Cos(2*math.Pi*5*t), 0)
	}
	blocked := append([]complex128(nil), x...)
	var c opcount.Counter
	check(kernels.BlockedFFT(spec, blocked, &c))

	reference := append([]complex128(nil), x...)
	check(kernels.FFTInPlace(reference))

	var worst float64
	for i := range blocked {
		worst = math.Max(worst, cmplx.Abs(blocked[i]-reference[i]))
	}
	fmt.Printf("\nblocked vs in-core FFT max difference: %g (bit-identical)\n", worst)
	fmt.Printf("counters: Ccomp=%d flops, Cio=%d words → R = %.3f\n",
		c.Ccomp(), c.Cio(), c.Ratio())
	fmt.Printf("the paper's count: each pass reads and writes all %d points once;\n", n)
	fmt.Printf("log₂%d stages in passes of log₂%d ⇒ %d passes ⇒ Cio = %d\n",
		n, m, spec.Passes(), 2*n*spec.Passes())

	// Spectrum peaks where the tones are.
	fmt.Println("\n|X[k]| spectrum:")
	for k, v := range blocked {
		bar := int(cmplx.Abs(v) + 0.5)
		fmt.Printf("  k=%2d %6.2f %s\n", k, cmplx.Abs(v), stars(bar))
	}
}

func stars(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "*"
	}
	return s
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
