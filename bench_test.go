// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per experiment id, matching the DESIGN.md §3 index) plus micro-benchmarks
// of the substrates. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benches report the harness cost of reproducing each result;
// their pass/fail content is asserted by the test suite
// (internal/experiments.TestAllExperimentsPass).
package balarch_test

import (
	"context"
	"fmt"
	"testing"

	"balarch"
)

// benchExperiment runs one experiment repeatedly, failing the bench if the
// reproduction stops matching the paper.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := balarch.RunExperiment(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if !res.Pass() {
			b.Fatalf("%s: claims failed:\n%s", id, res.String())
		}
	}
}

func BenchmarkE01SummaryTable(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE02Matmul(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE03Triangularization(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE04Grid(b *testing.B)              { benchExperiment(b, "E4") }
func BenchmarkE05FFT(b *testing.B)               { benchExperiment(b, "E5") }
func BenchmarkE06Sorting(b *testing.B)           { benchExperiment(b, "E6") }
func BenchmarkE07IOBound(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE08Array1D(b *testing.B)           { benchExperiment(b, "E8") }
func BenchmarkE09Mesh2D(b *testing.B)            { benchExperiment(b, "E9") }
func BenchmarkE10Warp(b *testing.B)              { benchExperiment(b, "E10") }
func BenchmarkE11PebbleBounds(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12CacheSim(b *testing.B)          { benchExperiment(b, "E12") }
func BenchmarkX1CornerMesh(b *testing.B)         { benchExperiment(b, "X1") }
func BenchmarkX2Overlap(b *testing.B)            { benchExperiment(b, "X2") }
func BenchmarkX3PolicyVsSchedule(b *testing.B)   { benchExperiment(b, "X3") }
func BenchmarkX4Strassen(b *testing.B)           { benchExperiment(b, "X4") }

// BenchmarkRebalanceSolver measures the numeric growth-law inversion across
// the whole catalog — the library's hot path for interactive use.
func BenchmarkRebalanceSolver(b *testing.B) {
	cat := balarch.Catalog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cat {
			if c.IOBounded {
				continue
			}
			if _, err := c.Rebalance(2, 4096, balarch.DefaultMaxMemory); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnalyze measures the balance diagnosis of one PE against the
// full catalog.
func BenchmarkAnalyze(b *testing.B) {
	pe := balarch.Warp()
	cat := balarch.Catalog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cat {
			if _, err := balarch.Analyze(pe, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAnalyzeHierarchy measures the per-boundary balance diagnosis of
// a four-level machine against the full catalog — the hierarchy-aware hot
// path behind POST /v1/analyze with levels. Regression-gated in CI
// alongside the server benchmarks (cmd/benchgate).
func BenchmarkAnalyzeHierarchy(b *testing.B) {
	h := balarch.Hierarchy{C: 1e9, Levels: []balarch.Level{
		{Name: "reg", BW: 8e9, M: 256},
		{Name: "sram", BW: 2e9, M: 64 << 10},
		{Name: "dram", BW: 200e6, M: 8 << 20},
		{Name: "disk", BW: 2e6, M: 1 << 30},
	}}
	cat := balarch.Catalog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cat {
			if _, err := balarch.AnalyzeHierarchy(h, c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRebalanceAlphaSweep measures solving the paper's question across
// α for the α²-law representative, reporting per-α cost.
func BenchmarkRebalanceAlphaSweep(b *testing.B) {
	mm := balarch.MatrixMultiplication()
	for _, alpha := range []float64{1.5, 2, 4, 8} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mm.Rebalance(alpha, 1024, balarch.DefaultMaxMemory); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchRunAll measures the whole E1–X4 suite through the concurrent engine
// at a fixed worker count; the Serial/Parallel pair is the BENCH_* speedup
// trajectory for the engine.
func benchRunAll(b *testing.B, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, pass, err := balarch.RunAll(context.Background(), parallelism)
		if err != nil {
			b.Fatal(err)
		}
		if !pass || len(results) != 16 {
			b.Fatalf("suite failed: pass=%v n=%d", pass, len(results))
		}
	}
}

// BenchmarkRunAllSerial runs the suite with one worker — the pre-engine
// baseline shape.
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel runs the suite with GOMAXPROCS workers.
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }
