package client

// SSE consumption: StreamJob follows GET /v1/jobs/{id}/events so callers
// see state transitions and per-point engine progress pushed, instead of
// polling. WaitForJob (client.go) rides it when the server supports the
// route and falls back to polling when it does not — an SDK built today
// keeps working against yesterday's daemon.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// JobEvent is one server-sent event on a job stream.
type JobEvent struct {
	// Type is "state", "progress", "done", or "dropped".
	Type string
	// Job carries the full status on "state" and "done" events.
	Job *JobStatus
	// Progress carries the engine pool position on "progress" events.
	Progress *JobProgress
	// Reason says why the server ended the stream early on "dropped"
	// events: "slow_consumer" or "shutting_down".
	Reason string
}

// ErrStopStream, returned from a StreamJob callback, ends the stream
// cleanly: StreamJob closes the connection and returns nil error.
var ErrStopStream = errors.New("client: stop streaming")

// StreamDroppedError reports a stream the server ended before the job
// finished — the subscriber fell behind (slow_consumer) or the daemon is
// draining (shutting_down). The job itself is unaffected; reconnect or
// poll.
type StreamDroppedError struct{ Reason string }

// Error implements error.
func (e *StreamDroppedError) Error() string {
	return fmt.Sprintf("client: job stream dropped by server (%s)", e.Reason)
}

// StreamJob follows GET /v1/jobs/{id}/events until the job reaches a
// terminal state, invoking fn (when non-nil) for every event — state
// transitions, engine progress, the terminal status. It returns the
// terminal status from the "done" event. A stream the server cuts early
// returns *StreamDroppedError (after fn sees the "dropped" event); fn
// returning ErrStopStream ends the stream cleanly with a nil error and a
// nil status; any other fn error aborts with that error. Heartbeat
// comments are consumed silently. The request bypasses the retry policy:
// a stream is not idempotent traffic to blindly reissue.
func (c *Client) StreamJob(ctx context.Context, id string, fn func(JobEvent) error) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, err
	}
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return nil, DecodeAPIError(&Response{
			Status: resp.StatusCode, Header: resp.Header, Body: buf.Bytes(),
		})
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4<<10), 1<<20)
	var eventName string
	var data []byte
	dispatch := func() (*JobStatus, bool, error) {
		if eventName == "" {
			return nil, false, nil // heartbeat or stray blank line
		}
		ev := JobEvent{Type: eventName}
		switch eventName {
		case "state", "done":
			j := new(JobStatus)
			if err := json.Unmarshal(data, j); err != nil {
				return nil, false, fmt.Errorf("client: decoding %s event: %w", eventName, err)
			}
			ev.Job = j
		case "progress":
			p := new(JobProgress)
			if err := json.Unmarshal(data, p); err != nil {
				return nil, false, fmt.Errorf("client: decoding progress event: %w", err)
			}
			ev.Progress = p
		case "dropped":
			var d struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal(data, &d); err != nil {
				return nil, false, fmt.Errorf("client: decoding dropped event: %w", err)
			}
			ev.Reason = d.Reason
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, true, err
			}
		}
		switch eventName {
		case "done":
			return ev.Job, true, nil
		case "dropped":
			return nil, true, &StreamDroppedError{Reason: ev.Reason}
		}
		return nil, false, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			j, terminal, err := dispatch()
			eventName, data = "", nil
			if terminal || err != nil {
				if errors.Is(err, ErrStopStream) {
					err = nil
				}
				return j, err
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event:"):
			eventName = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("client: job stream for %s broke: %w", id, err)
	}
	return nil, fmt.Errorf("client: job stream for %s ended without a terminal event", id)
}
