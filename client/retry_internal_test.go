package client

// Internal test pinning the retry sleep schedule, including the 429
// Retry-After override. It swaps the package's sleep seam for a recorder
// so the schedule is asserted exactly, not timed.

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryScheduleHonorsRetryAfter(t *testing.T) {
	var slept []time.Duration
	orig := sleep
	sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	defer func() { sleep = orig }()

	// Attempt 1: 429 with Retry-After: 7. Attempt 2: 503 (no hint).
	// Attempt 3: 429 with an unparsable hint. Attempt 4: 200.
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"over_budget","message":"wait"}}`))
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"later"}}`))
		case 3:
			w.Header().Set("Retry-After", "soon")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"over_budget","message":"wait"}}`))
		default:
			w.Write([]byte(`{"status":"ok","uptime_seconds":1,"experiments":16}`))
		}
	})
	backoff := 10 * time.Millisecond
	c := NewFromHandler(h, WithRetry(4, backoff))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("handler saw %d calls, want 4", calls.Load())
	}
	// The pinned schedule: Retry-After 7s beats 1×backoff; the plain 503
	// falls back to 2×backoff; the bad hint falls back to 3×backoff.
	want := []time.Duration{7 * time.Second, 2 * backoff, 3 * backoff}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestRetryAfterBelowScheduleIgnored: a hint smaller than the schedule
// does not shorten it — backoff still grows.
func TestRetryAfterBelowScheduleIgnored(t *testing.T) {
	var slept []time.Duration
	orig := sleep
	sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	defer func() { sleep = orig }()

	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"over_budget","message":"wait"}}`))
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1,"experiments":16}`))
	})
	c := NewFromHandler(h, WithRetry(3, time.Second))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Errorf("slept %v, want [1s] (schedule wins over a zero hint)", slept)
	}
}

// TestNo429RetryWithoutOption: the default client surfaces a 429
// immediately as *APIError, exactly like any other non-2xx.
func TestNo429RetryWithoutOption(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"code":"over_budget","message":"wait"}}`))
	})
	c := NewFromHandler(h)
	raw, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil)
	if err != nil || raw.Status != http.StatusTooManyRequests {
		t.Fatalf("Do = %v, %v; want the raw 429", raw, err)
	}
	if calls.Load() != 1 {
		t.Errorf("handler saw %d calls, want 1", calls.Load())
	}
}
