package client_test

// End-to-end coverage for the hierarchy-aware API through the SDK over real
// HTTP: a three-level machine driven analyze → rebalance → roofline, the
// catalog listing that names the computations, and the hierarchy sweep.

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"balarch/client"
	"balarch/internal/server"
)

// threeLevels is the e2e machine: 1 GOPS over sram → dram → disk.
func threeLevels() []client.Level {
	return []client.Level{
		{Name: "sram", BW: 4e9, M: 1024},
		{Name: "dram", BW: 1e9, M: 262144},
		{Name: "disk", BW: 1e5, M: 67108864},
	}
}

// TestHierarchyEndToEndOverHTTP drives a ≥3-level hierarchy through the
// real HTTP stack (socket, middleware, strict decode) via the typed SDK:
// analyze finds the binding boundary, rebalance prices the fix, roofline
// draws the multi-ridge picture.
func TestHierarchyEndToEndOverHTTP(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Options{Parallelism: 2}).Handler())
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// 1. Analyze: the disk boundary binds (intensity 10⁴ against R≈8208).
	a, err := c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 1e9},
		Levels:      threeLevels(),
		Computation: client.Computation{Name: "matmul"},
	})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if a.BindingBoundary != 3 || a.State != "io-bound" || len(a.Boundaries) != 3 {
		t.Fatalf("analyze = %+v, want binding boundary 3 io-bound with 3 boundaries", a)
	}
	if a.Boundaries[0].State != "compute-bound" {
		t.Errorf("sram boundary state = %s, want compute-bound", a.Boundaries[0].State)
	}

	// 2. Rebalance: the compute rate doubles; the bill must cover every
	// boundary's requirement and shrink no level.
	r, err := c.Rebalance(ctx, &client.RebalanceRequest{
		Computation: client.Computation{Name: "matmul"},
		Alpha:       2,
		C:           1e9,
		Levels:      threeLevels(),
	})
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if !r.Rebalanceable || len(r.LevelBill) != 3 {
		t.Fatalf("rebalance = %+v, want a 3-line bill", r)
	}
	var total float64
	for i, l := range r.LevelBill {
		if l.MNew < l.MOld {
			t.Errorf("level %d shrank: %v → %v", i+1, l.MOld, l.MNew)
		}
		total += l.MNew
	}
	if math.Abs(total-r.TotalMemory) > 1e-6*r.TotalMemory {
		t.Errorf("bill sums to %v, total_memory %v", total, r.TotalMemory)
	}
	// The binding boundary's requirement: intensity 2·10⁴ for √M → 4·10⁸.
	if got := r.Boundaries[2].RequiredWithin; math.Abs(got-4e8)/4e8 > 1e-6 {
		t.Errorf("disk boundary requires %v, want 4e8", got)
	}

	// 3. Roofline: one ridge per boundary, monotone attainable along the
	// disk-capacity sweep, the multi-ridge chart rendered.
	rf, err := c.Roofline(ctx, &client.RooflineRequest{
		PE:           client.PE{C: 1e9},
		Levels:       threeLevels(),
		Computations: []client.Computation{{Name: "matmul"}, {Name: "sorting"}},
		MemLo:        1 << 20,
		MemHi:        1 << 30,
		SweepLevel:   3,
		Chart:        true,
	})
	if err != nil {
		t.Fatalf("roofline: %v", err)
	}
	if len(rf.Ridges) != 3 || rf.SweepLevel != 3 {
		t.Fatalf("roofline = %d ridges sweep level %d, want 3/3", len(rf.Ridges), rf.SweepLevel)
	}
	if rf.RidgeIntensity != 1e9/1e5 {
		t.Errorf("ridge intensity %v, want the outermost 1e4", rf.RidgeIntensity)
	}
	if !strings.Contains(rf.Chart, "multi-ridge roofline") {
		t.Error("chart is not the multi-ridge rendering")
	}
	for _, p := range rf.Paths {
		for i := 1; i < len(p.Points); i++ {
			if p.Points[i].Attainable < p.Points[i-1].Attainable {
				t.Errorf("%s: attainable fell along the capacity sweep", p.Computation)
			}
		}
	}

	// 4. The hierarchy sweep kernel through the same socket.
	sw, err := c.Sweep(ctx, &client.SweepRequest{
		Kernel:      "hierarchy",
		C:           8e6,
		Levels:      []client.Level{{BW: 1e6, M: 16}, {BW: 5e5, M: 1 << 20}},
		Computation: &client.Computation{Name: "sorting"},
		Params:      []int{16, 65536},
	})
	if err != nil {
		t.Fatalf("hierarchy sweep: %v", err)
	}
	if len(sw.Points) != 2 || math.Abs(sw.Points[0].Ratio-4) > 1e-5 {
		t.Fatalf("hierarchy sweep points = %+v, want ratio 4 at the first", sw.Points)
	}

	// 5. A mis-ordered stack surfaces the typed 422 through the SDK.
	_, err = c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 1e9},
		Levels:      []client.Level{{BW: 1e6, M: 64}, {BW: 2e6, M: 256}},
		Computation: client.Computation{Name: "fft"},
	})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 422 || ae.Code != "non_monotone_hierarchy" {
		t.Fatalf("non-monotone stack error = %v, want 422 non_monotone_hierarchy", err)
	}
}

// TestCatalogThroughSDK: the catalog names every id, and each id analyzes.
func TestCatalogThroughSDK(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	cat, err := c.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Computations) < 9 {
		t.Fatalf("catalog lists %d computations", len(cat.Computations))
	}
	for _, e := range cat.Computations {
		if e.ID == "" || e.Law == "" || e.RatioFamily == "" {
			t.Errorf("catalog entry incomplete: %+v", e)
		}
		a, err := c.Analyze(ctx, &client.AnalyzeRequest{
			PE:          client.PE{C: 1e6, IO: 1e6, M: 4096},
			Computation: client.Computation{Name: e.ID},
		})
		if err != nil {
			t.Errorf("catalog id %q rejected: %v", e.ID, err)
			continue
		}
		if a.Law != e.Law {
			t.Errorf("id %q: analyze law %q != catalog law %q", e.ID, a.Law, e.Law)
		}
	}
}

// TestWaitForJobReturnsPromptlyOnCancel audits the poll loop: a context
// cancelled mid-sleep must surface immediately, not after the full poll
// interval. The queue runs with no workers so the job never leaves
// "queued".
func TestWaitForJobReturnsPromptlyOnCancel(t *testing.T) {
	srv := server.New(server.Options{StoreDir: t.TempDir(), JobWorkers: -1})
	if err := srv.JobsErr(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	c := client.NewFromHandler(srv.Handler())

	job, err := c.SubmitJob(context.Background(), &client.JobSubmitRequest{
		Op:      "rebalance",
		Request: []byte(`{"computation": {"name": "matmul"}, "alpha": 2, "m_old": 1024}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.WaitForJob(ctx, job.ID, 30*time.Second) // sleep far longer than the test budget
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("WaitForJob returned no error on a never-finishing job")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("WaitForJob took %v to notice cancellation; it must return promptly, not finish the 30s sleep", elapsed)
	}
}
