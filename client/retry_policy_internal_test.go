package client

// Internal tests for WithRetryPolicy: the 503 Retry-After override and
// the MaxBackoff clip, pinned via the sleep seam.

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// recordSleeps swaps the sleep seam for a recorder for one test.
func recordSleeps(t *testing.T) *[]time.Duration {
	t.Helper()
	var slept []time.Duration
	orig := sleep
	sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	t.Cleanup(func() { sleep = orig })
	return &slept
}

func Test503RetryAfterHonored(t *testing.T) {
	slept := recordSleeps(t)
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"draining","message":"soon"}}`))
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1,"experiments":16}`))
	})
	c := NewFromHandler(h, WithRetryPolicy(RetryPolicy{Attempts: 2, Backoff: time.Millisecond}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The 503's Retry-After (7s) exceeds the schedule (1ms) and wins —
	// the unified throttling contract: hints are honored on 503 and 429
	// alike.
	if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
		t.Fatalf("slept %v, want [7s]", *slept)
	}
}

func TestRetryPolicyMaxBackoffClips(t *testing.T) {
	slept := recordSleeps(t)
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n < 4 {
			if n == 1 {
				// Even an aggressive server hint is clipped.
				w.Header().Set("Retry-After", "60")
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"later"}}`))
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1,"experiments":16}`))
	})
	c := NewFromHandler(h, WithRetryPolicy(RetryPolicy{
		Attempts: 4, Backoff: 10 * time.Millisecond, MaxBackoff: 15 * time.Millisecond,
	}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// try 1: hint 60s → clip 15ms; try 2: 2×10ms = 20ms → clip 15ms;
	// try 3: 3×10ms = 30ms → clip 15ms.
	want := []time.Duration{15 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Fatalf("sleep %d = %v, want %v (all: %v)", i, (*slept)[i], d, *slept)
		}
	}
}

func TestWithRetryIsPolicySugar(t *testing.T) {
	var c Client
	WithRetry(5, time.Second)(&c)
	if c.retry.Attempts != 5 || c.retry.Backoff != time.Second || c.retry.MaxBackoff != 0 {
		t.Fatalf("WithRetry installed %+v", c.retry)
	}
}
