// Package client is the typed Go SDK for the balarch balance-as-a-service
// HTTP API (internal/server, served by cmd/balarchd). It exposes one method
// per /v1 endpoint plus the health and metrics probes, all context-aware:
//
//	c, err := client.New("http://127.0.0.1:8080")
//	a, err := c.Analyze(ctx, &client.AnalyzeRequest{
//	        PE:          client.PE{C: 50e6, IO: 1e6, M: 4096},
//	        Computation: client.Computation{Name: "fft"},
//	})
//	// a.State == "io-bound", a.BalancedMemory == 1<<20
//
// Every request and response type is an alias of the server's wire type, so
// the SDK and the service cannot drift apart. Non-2xx responses decode the
// API's error envelope into *APIError, which carries the HTTP status, the
// stable machine-readable code, the human-readable message, and the echoed
// X-Request-ID — switch on Code (or errors.As for the type) instead of
// parsing prose.
//
// The zero-configuration client reuses connections aggressively (a shared
// keep-alive transport sized for many concurrent workers — the load
// generator in internal/loadgen runs on this client). WithRetry opts into
// bounded retry of overload responses (503) and transport errors; every API
// operation is a pure computation, so retries are always safe. For tests
// and embedders, NewFromHandler binds the client directly to an
// http.Handler — typically balarch.NewServerHandler — with no socket.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"balarch/internal/obs"
	"balarch/internal/server"
)

// Wire types, aliased from the server so request and response shapes are
// identical on both ends by construction.
type (
	// PE is a processing element: computation bandwidth C (ops/s), I/O
	// bandwidth IO (words/s), local memory M (words).
	PE = server.PEDTO
	// Computation names one catalog computation ("matmul", "fft", …).
	Computation = server.ComputationDTO
	// Level is one memory level of a hierarchy request (innermost first):
	// capacity M words behind a boundary of BW words/s. Putting a Levels
	// array on an analyze/rebalance/roofline/sweep request switches it to
	// the hierarchy-aware model.
	Level = server.LevelDTO
	// Boundary is one boundary's balance diagnosis in a hierarchy
	// analyze response.
	Boundary = server.BoundaryDTO
	// RebalanceBoundary is one boundary's cumulative requirement in a
	// hierarchy rebalance response.
	RebalanceBoundary = server.RebalanceBoundaryDTO
	// LevelBill is one level's line of a hierarchy rebalance memory bill.
	LevelBill = server.LevelBillDTO
	// Ridge is one boundary's ridge on a multi-ridge roofline response.
	Ridge = server.RidgeDTO
	// CatalogEntry/CatalogResponse are the GET /v1/catalog wire types:
	// the computation ids the API accepts, with paper metadata and growth
	// laws, so clients enumerate instead of hard-coding.
	CatalogEntry    = server.CatalogEntry
	CatalogResponse = server.CatalogResponse

	// AnalyzeRequest/AnalyzeResponse are the POST /v1/analyze wire types.
	AnalyzeRequest  = server.AnalyzeRequest
	AnalyzeResponse = server.AnalyzeResponse
	// RebalanceRequest/RebalanceResponse are the POST /v1/rebalance types.
	RebalanceRequest  = server.RebalanceRequest
	RebalanceResponse = server.RebalanceResponse
	// RooflineRequest/RooflineResponse are the POST /v1/roofline types.
	RooflineRequest  = server.RooflineRequest
	RooflineResponse = server.RooflineResponse
	// SweepRequest/SweepResponse are the POST /v1/sweep types.
	SweepRequest  = server.SweepRequest
	SweepResponse = server.SweepResponse
	// EmulationRequest/EmulationResponse are the POST /v1/emulation types:
	// Hanlon's question — N small memory modules behaving as one large
	// memory — answered against the ideal flat machine.
	EmulationRequest  = server.EmulationRequest
	EmulationResponse = server.EmulationResponse
	// EmulationSide is one machine's balance diagnosis inside an
	// EmulationResponse (the emulated hierarchy or the ideal flat PE).
	EmulationSide = server.EmulationSideDTO
	// BatchRequest/BatchItem/BatchResponse are the POST /v1/batch types.
	BatchRequest  = server.BatchRequest
	BatchItem     = server.BatchItem
	BatchResponse = server.BatchResponse
	// ExperimentsResponse lists the registry (GET /v1/experiments);
	// ExperimentRunResponse is one run's report (POST /v1/experiments/{id}).
	ExperimentsResponse   = server.ExperimentsResponse
	ExperimentRunResponse = server.ExperimentRunResponse
	// JobSubmitRequest is the POST /v1/jobs body: a batch-item envelope
	// ({op, request}) executed durably and asynchronously.
	JobSubmitRequest = server.JobSubmitRequest
	// JobStatus is one async job's status (submit/get/list responses).
	JobStatus = server.JobStatusDTO
	// JobListResponse is the GET /v1/jobs body.
	JobListResponse = server.JobListResponse
	// JobDeleteResponse is the DELETE /v1/jobs/{id} body.
	JobDeleteResponse = server.JobDeleteResponse
	// JobProgress is the data payload of a job stream's "progress" SSE
	// event: one engine pool completion inside the running job.
	JobProgress = server.JobProgressDTO
	// APIIndexResponse is the GET /v1/ body: the API surface as data —
	// routes, error codes, computation ids, experiment ids.
	APIIndexResponse = server.APIIndexResponse
	// APIRouteInfo is one route in APIIndexResponse.
	APIRouteInfo = server.APIRouteInfo
	// TenantSnapshot is one tenant's slice of the /metrics counters on a
	// tenancy-enabled server.
	TenantSnapshot = server.TenantSnapshot
	// HealthResponse is the GET /healthz body.
	HealthResponse = server.HealthResponse
	// ReadyResponse is the GET /readyz body on a ready server (a draining
	// one answers 503 with the standard error envelope, code "draining").
	ReadyResponse = server.ReadyResponse
	// MetricsSnapshot is the GET /metrics body, including the per-route
	// latency summaries the load generator cross-checks against.
	MetricsSnapshot = server.Snapshot
	// RouteLatency is one route's latency summary inside MetricsSnapshot.
	RouteLatency = server.RouteLatency
)

// RequestIDHeader is the correlation header the server echoes.
const RequestIDHeader = server.RequestIDHeader

// Job priority classes for JobSubmitRequest.Priority. Priority orders
// picks within one tenant's backlog; tenant fairness wins across
// tenants. Leaving the field empty (or JobPriorityNormal) keeps the
// request byte-identical to the pre-priority wire format.
const (
	JobPriorityLow    = "low"
	JobPriorityNormal = ""
	JobPriorityHigh   = "high"
)

// APIError is a decoded non-2xx response: the typed error envelope plus the
// HTTP status and the echoed request id.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the envelope's stable machine-readable identifier, e.g.
	// "bad_json", "invalid_argument", "unknown_experiment", "overloaded".
	Code string
	// Message is the envelope's human-readable cause.
	Message string
	// RequestID is the response's X-Request-ID header, for correlating
	// with server logs.
	RequestID string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("balarch api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the SDK's shared keep-alive http.Client; use it
// to plug in instrumentation or custom TLS.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// RetryPolicy is the consolidated retry configuration (WithRetryPolicy):
// how many attempts in total, the base of the linear backoff schedule
// (backoff, 2·backoff, …), and an optional cap on any single sleep.
type RetryPolicy struct {
	// Attempts is the total number of tries; ≤ 1 disables retry.
	Attempts int
	// Backoff is the schedule base: the sleep before try n+1 is
	// n·Backoff (before any Retry-After hint or MaxBackoff cap).
	Backoff time.Duration
	// MaxBackoff, when positive, caps each sleep — schedule and server
	// hint alike — so a long run of refusals cannot stretch one wait
	// unboundedly. 0 leaves the schedule uncapped.
	MaxBackoff time.Duration
}

// WithRetryPolicy enables bounded retry: a request that fails in
// transport, returns 503 (overload, drain, or a cancelled run), returns
// 502 (a gateway lost the node mid-proxy), or
// returns 429 (rate limit or job-admission refusal) is reissued up to
// Attempts times in total, sleeping per the policy between tries
// (context-aware). A throttling response's Retry-After header — the
// server sends one on every 429 and 503 — is honored: the sleep before
// the next attempt is the larger of the schedule and the server's hint,
// clipped to MaxBackoff. Every API operation is a pure computation (and
// job submission is idempotent — identical requests share one job), so
// retrying is always safe.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// WithRetry enables bounded retry with an uncapped linear schedule.
//
// Deprecated: use WithRetryPolicy, which adds MaxBackoff. WithRetry(a, b)
// is exactly WithRetryPolicy(RetryPolicy{Attempts: a, Backoff: b}).
func WithRetry(attempts int, backoff time.Duration) Option {
	return WithRetryPolicy(RetryPolicy{Attempts: attempts, Backoff: backoff})
}

// WithAPIKey attaches a tenant API key to every request the client
// issues (Authorization: Bearer <key>), for servers running with a
// tenants config. Per-request override: DoAs.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithTracing sends a fresh W3C traceparent (sampled) on every request,
// so the server captures each one's trace in its /debug/traces ring. The
// header sent is recorded on Response.Traceparent; TraceEchoed reports
// whether the server joined the trace. Each retry attempt gets its own
// span id — two attempts of one logical call are distinct traces.
func WithTracing() Option {
	return func(c *Client) { c.tracing = true }
}

// The keep-alive transport registry, one *http.Transport per target
// host. The stdlib default keeps only 2 idle connections per host, which
// makes a many-worker load run reopen sockets constantly; each balarch
// target instead gets its own transport with MaxConnsPerHost and
// MaxIdleConnsPerHost sized for the load generator's worker counts. Per
// host rather than one shared transport so a multi-target process — a
// load run against a gateway plus direct node probes, say — cannot have
// one host's connection churn evict another's idle pool through the
// transport-wide MaxIdleConns cap.
const transportConnsPerHost = 256

var (
	transportMu sync.Mutex
	transports  = map[string]*http.Transport{}
)

// transportForHost returns (building on first use) the host's transport.
func transportForHost(host string) *http.Transport {
	transportMu.Lock()
	defer transportMu.Unlock()
	if t, ok := transports[host]; ok {
		return t
	}
	t := &http.Transport{
		MaxConnsPerHost:     transportConnsPerHost,
		MaxIdleConns:        transportConnsPerHost,
		MaxIdleConnsPerHost: transportConnsPerHost,
		IdleConnTimeout:     90 * time.Second,
	}
	transports[host] = t
	return t
}

// Client is a typed handle on one balarch API server. It is safe for
// concurrent use; all methods honor their context.
type Client struct {
	base    string
	http    *http.Client
	retry   RetryPolicy
	apiKey  string
	tracing bool
}

// New returns a client for the server at baseURL (scheme and host, e.g.
// "http://127.0.0.1:8080"; any trailing slash is trimmed).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: invalid base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Transport: transportForHost(u.Host)},
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// handlerTransport serves round trips straight into an http.Handler: the
// in-process mode used by tests, examples, and the load generator's
// -inprocess runs. No socket, no serialization loss — the handler sees a
// real *http.Request and writes a real response.
type handlerTransport struct{ h http.Handler }

// RoundTrip implements http.RoundTripper.
func (t handlerTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, r)
	resp := rec.Result()
	resp.Request = r
	return resp, nil
}

// NewFromHandler returns a client bound directly to h — typically
// balarch.NewServerHandler(opts) — so callers can exercise the full API
// stack in process.
func NewFromHandler(h http.Handler, opts ...Option) *Client {
	c := &Client{
		base: "http://in-process",
		http: &http.Client{Transport: handlerTransport{h}},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Response is a raw API exchange: what Do returns. Typed methods are built
// on it; the load generator uses it directly to time and classify traffic.
type Response struct {
	// Status is the HTTP status code.
	Status int
	// Header is the response header (X-Request-ID is always present).
	Header http.Header
	// Body is the full response body.
	Body []byte
	// Traceparent is the W3C trace-context header this request carried
	// (set by WithTracing; empty otherwise).
	Traceparent string
}

// ServerTiming returns the response's Server-Timing header — the
// per-stage breakdown the server attaches to trace=1 requests — or ""
// when the server sent none.
func (r *Response) ServerTiming() string {
	return r.Header.Get("Server-Timing")
}

// TraceEchoed reports whether the server joined the trace this request
// carried: the response's Traceparent header names the same trace id the
// request sent (the server always re-parents with its own span id, so
// only the trace id halves are compared). Always false on requests that
// sent no traceparent.
func (r *Response) TraceEchoed() bool {
	if r.Traceparent == "" {
		return false
	}
	return obs.SameTrace(r.Traceparent, r.Header.Get("Traceparent"))
}

// Do issues one request against the API: method and path (e.g. "POST",
// "/v1/analyze") with the given JSON body (nil for GETs). It applies the
// client's retry policy and returns the raw exchange; any HTTP status is a
// successful Do. Typed methods are usually what you want — Do is the escape
// hatch for traffic generation and new endpoints.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	return c.do(ctx, c.apiKey, method, path, body)
}

// DoAs is Do with an explicit tenant API key for this one request,
// overriding (or, when the client has none, supplying) WithAPIKey. The
// load generator uses it to drive several tenants through one client.
func (c *Client) DoAs(ctx context.Context, apiKey, method, path string, body []byte) (*Response, error) {
	return c.do(ctx, apiKey, method, path, body)
}

func (c *Client) do(ctx context.Context, apiKey, method, path string, body []byte) (*Response, error) {
	var (
		lastErr    error
		retryAfter time.Duration // server's Retry-After hint from the last 429/503
	)
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for try := 0; try < attempts; try++ {
		if try > 0 {
			// The schedule is backoff, 2·backoff, …; a throttling
			// response's Retry-After hint overrides it when larger — the
			// server knows when budget will free up, the schedule does
			// not. MaxBackoff clips whichever won.
			d := time.Duration(try) * c.retry.Backoff
			if retryAfter > d {
				d = retryAfter
			}
			if c.retry.MaxBackoff > 0 && d > c.retry.MaxBackoff {
				d = c.retry.MaxBackoff
			}
			if err := sleep(ctx, d); err != nil {
				return nil, err
			}
		}
		retryAfter = 0
		resp, err := c.roundTrip(ctx, apiKey, method, path, body)
		if err != nil {
			lastErr = err
			continue // transport error: retry
		}
		if retriableStatus(resp.Status) && try < attempts-1 {
			// Both throttling statuses carry Retry-After under the
			// unified envelope: 429 (rate_limited, over_budget) and 503
			// (overloaded, draining, cancelled).
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = DecodeAPIError(resp)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("client: %s %s failed after %d attempt(s): %w",
		method, path, attempts, lastErr)
}

// retriableStatus lists the responses WithRetry reissues: overload (503),
// admission refusal (429), and a gateway's upstream failure (502 — the
// node died mid-proxy; the gateway has already ejected it, so the retry
// lands on a surviving node). All three mean "later", not "never".
func retriableStatus(status int) bool {
	return status == http.StatusServiceUnavailable ||
		status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway
}

// parseRetryAfter reads the header's delta-seconds form (the only form
// the balarch server emits); absent or unparsable means no hint.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleep is sleepCtx behind a seam the retry-schedule test pins.
var sleep = sleepCtx

// roundTrip is one attempt of Do.
func (c *Client) roundTrip(ctx context.Context, apiKey, method, path string, body []byte) (*Response, error) {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+apiKey)
	}
	var traceparent string
	if c.tracing {
		traceparent = obs.NewTraceparent(true)
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header,
		Body: buf.Bytes(), Traceparent: traceparent}, nil
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// call marshals req, posts it to path, and decodes a 200 into a fresh Resp;
// any other status becomes *APIError.
func call[Req any, Resp any](ctx context.Context, c *Client, method, path string, req *Req) (*Resp, error) {
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("client: encoding %s %s request: %w", method, path, err)
		}
	}
	raw, err := c.Do(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	if raw.Status != http.StatusOK {
		return nil, DecodeAPIError(raw)
	}
	out := new(Resp)
	if err := json.Unmarshal(raw.Body, out); err != nil {
		return nil, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return out, nil
}

// DecodeAPIError turns a non-2xx raw exchange into *APIError, decoding the
// typed envelope when present and falling back to a body snippet when the
// response came from something other than the API (a proxy, say).
func DecodeAPIError(raw *Response) *APIError {
	ae := &APIError{Status: raw.Status, RequestID: raw.Header.Get(RequestIDHeader)}
	var env struct {
		Error server.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(raw.Body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		return ae
	}
	ae.Code = "http_error"
	snippet := string(raw.Body)
	if len(snippet) > 200 {
		snippet = snippet[:200] + "…"
	}
	ae.Message = strings.TrimSpace(snippet)
	return ae
}

// WaitHealthy polls GET /healthz until the server answers or wait runs
// out, sleeping 100ms between attempts (context-aware). The readiness
// preflight for tools that boot a daemon and immediately drive it
// (cmd/balarchload, cmd/clientsmoke, ci/soak.sh). It returns the last
// health error on timeout, and the healthy response otherwise.
func (c *Client) WaitHealthy(ctx context.Context, wait time.Duration) (*HealthResponse, error) {
	deadline := time.Now().Add(wait)
	for {
		h, err := c.Health(ctx)
		if err == nil {
			return h, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: target not healthy after %v: %w", wait, err)
		}
		if err := sleepCtx(ctx, 100*time.Millisecond); err != nil {
			return nil, err
		}
	}
}

// Analyze asks POST /v1/analyze: is this PE balanced for this computation,
// and what memory would balance it?
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	return call[AnalyzeRequest, AnalyzeResponse](ctx, c, http.MethodPost, "/v1/analyze", req)
}

// Rebalance asks POST /v1/rebalance: C/IO grew by α — how much memory
// restores balance?
func (c *Client) Rebalance(ctx context.Context, req *RebalanceRequest) (*RebalanceResponse, error) {
	return call[RebalanceRequest, RebalanceResponse](ctx, c, http.MethodPost, "/v1/rebalance", req)
}

// Roofline asks POST /v1/roofline: the PE's roofline with each requested
// computation's path along it.
func (c *Client) Roofline(ctx context.Context, req *RooflineRequest) (*RooflineResponse, error) {
	return call[RooflineRequest, RooflineResponse](ctx, c, http.MethodPost, "/v1/roofline", req)
}

// Sweep asks POST /v1/sweep: run (or recall) one instrumented kernel sweep
// and return the measured ratio curve.
func (c *Client) Sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, error) {
	return call[SweepRequest, SweepResponse](ctx, c, http.MethodPost, "/v1/sweep", req)
}

// Emulation asks POST /v1/emulation: do N memory modules emulate one
// large memory for this computation, and at what efficiency?
func (c *Client) Emulation(ctx context.Context, req *EmulationRequest) (*EmulationResponse, error) {
	return call[EmulationRequest, EmulationResponse](ctx, c, http.MethodPost, "/v1/emulation", req)
}

// Batch posts POST /v1/batch: heterogeneous sub-requests fanned out on the
// server's worker pool, results in request order.
func (c *Client) Batch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	return call[BatchRequest, BatchResponse](ctx, c, http.MethodPost, "/v1/batch", req)
}

// Catalog lists the computation catalog (GET /v1/catalog): every id the
// API accepts in Computation.Name, with its growth law and ratio family.
func (c *Client) Catalog(ctx context.Context) (*CatalogResponse, error) {
	return call[struct{}, CatalogResponse](ctx, c, http.MethodGet, "/v1/catalog", nil)
}

// Experiments lists the experiment registry (GET /v1/experiments).
func (c *Client) Experiments(ctx context.Context) (*ExperimentsResponse, error) {
	return call[struct{}, ExperimentsResponse](ctx, c, http.MethodGet, "/v1/experiments", nil)
}

// RunExperiment reproduces one experiment by id (POST /v1/experiments/{id})
// and returns its JSON report with the pass verdict.
func (c *Client) RunExperiment(ctx context.Context, id string) (*ExperimentRunResponse, error) {
	return call[struct{}, ExperimentRunResponse](ctx, c, http.MethodPost,
		"/v1/experiments/"+url.PathEscape(id), nil)
}

// APIIndex fetches GET /v1/: the machine-readable API surface — every
// route, error code, computation id, and experiment id the server
// serves.
func (c *Client) APIIndex(ctx context.Context) (*APIIndexResponse, error) {
	return call[struct{}, APIIndexResponse](ctx, c, http.MethodGet, "/v1/", nil)
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	return call[struct{}, HealthResponse](ctx, c, http.MethodGet, "/healthz", nil)
}

// Ready probes GET /readyz — the readiness probe, distinct from Health's
// liveness: a draining server answers its health check but refuses new
// work here (503 *APIError, code "draining").
func (c *Client) Ready(ctx context.Context) (*ReadyResponse, error) {
	return call[struct{}, ReadyResponse](ctx, c, http.MethodGet, "/readyz", nil)
}

// Metrics fetches GET /metrics: the server's counters, including the
// per-route latency summaries.
func (c *Client) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	return call[struct{}, MetricsSnapshot](ctx, c, http.MethodGet, "/metrics", nil)
}

// --- async jobs (POST /v1/jobs and friends) ---

// SubmitJob posts POST /v1/jobs: the envelope is journaled durably before
// the ack and executed asynchronously. The returned status is usually
// "queued" (202); an identical request already completed — on this server
// or any past one sharing the store directory — comes back "done" (200)
// immediately, deduplicated against the content-addressed store. A 429
// admission refusal surfaces as *APIError (code "over_budget"); with
// WithRetry the client resleeps per the server's Retry-After first.
func (c *Client) SubmitJob(ctx context.Context, req *JobSubmitRequest) (*JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding POST /v1/jobs request: %w", err)
	}
	raw, err := c.Do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	if raw.Status != http.StatusOK && raw.Status != http.StatusAccepted {
		return nil, DecodeAPIError(raw)
	}
	out := new(JobStatus)
	if err := json.Unmarshal(raw.Body, out); err != nil {
		return nil, fmt.Errorf("client: decoding POST /v1/jobs response: %w", err)
	}
	return out, nil
}

// GetJob polls GET /v1/jobs/{id}.
func (c *Client) GetJob(ctx context.Context, id string) (*JobStatus, error) {
	return call[struct{}, JobStatus](ctx, c, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil)
}

// ListJobs fetches GET /v1/jobs, optionally filtered to one state
// ("queued", "running", "done", "failed", "canceled"; "" lists all).
func (c *Client) ListJobs(ctx context.Context, state string) (*JobListResponse, error) {
	path := "/v1/jobs"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	return call[struct{}, JobListResponse](ctx, c, http.MethodGet, path, nil)
}

// ListJobsPage fetches one page of GET /v1/jobs: at most limit jobs
// (limit ≤ 0 lists everything, like ListJobs), resuming after cursor
// ("" starts from the newest). A non-empty NextCursor on the response
// means more pages remain; Jobs ranges them all.
func (c *Client) ListJobsPage(ctx context.Context, state string, limit int, cursor string) (*JobListResponse, error) {
	q := url.Values{}
	if state != "" {
		q.Set("state", state)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	return call[struct{}, JobListResponse](ctx, c, http.MethodGet, path, nil)
}

// JobsPager iterates GET /v1/jobs page by page. Create one with Jobs,
// then loop while More, calling Next:
//
//	for p := c.Jobs("", 100); p.More(); {
//	        page, err := p.Next(ctx)
//	        ...
//	}
type JobsPager struct {
	c      *Client
	state  string
	limit  int
	cursor string
	done   bool
}

// Jobs returns a pager over GET /v1/jobs: pages of at most limit jobs
// (limit ≤ 0 fetches everything in one page), optionally filtered to one
// state.
func (c *Client) Jobs(state string, limit int) *JobsPager {
	return &JobsPager{c: c, state: state, limit: limit}
}

// More reports whether another Next call would fetch a page.
func (p *JobsPager) More() bool { return !p.done }

// Next fetches the next page. After an error the pager's position is
// unchanged — the same Next can be retried.
func (p *JobsPager) Next(ctx context.Context) (*JobListResponse, error) {
	if p.done {
		return &JobListResponse{Jobs: []JobStatus{}}, nil
	}
	page, err := p.c.ListJobsPage(ctx, p.state, p.limit, p.cursor)
	if err != nil {
		return nil, err
	}
	p.cursor = page.NextCursor
	p.done = page.NextCursor == ""
	return page, nil
}

// JobResult fetches GET /v1/jobs/{id}/result: the stored result bytes,
// byte-identical to the synchronous endpoint's response for the same
// request. A job not yet done is a 409 *APIError (code "not_done");
// failed and canceled jobs carry their own codes.
func (c *Client) JobResult(ctx context.Context, id string) ([]byte, error) {
	raw, err := c.Do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	if raw.Status != http.StatusOK {
		return nil, DecodeAPIError(raw)
	}
	return raw.Body, nil
}

// CancelJob issues DELETE /v1/jobs/{id}: a live job is canceled, a
// terminal one forgotten (its content-addressed result stays in the
// store).
func (c *Client) CancelJob(ctx context.Context, id string) (*JobDeleteResponse, error) {
	return call[struct{}, JobDeleteResponse](ctx, c, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil)
}

// WaitForJob blocks until the job reaches a terminal state or ctx ends,
// and returns the terminal status whatever it is — done, failed, or
// canceled; deciding what failure means is the caller's business. Fetch
// a done job's bytes with JobResult.
//
// It consumes the server's SSE stream (GET /v1/jobs/{id}/events) when
// available, so completion arrives pushed instead of polled; against a
// server without the route — or when the server drops the stream — it
// falls back to polling GET /v1/jobs/{id} every interval (≤ 0 means
// 100 ms).
func (c *Client) WaitForJob(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	j, err := c.StreamJob(ctx, id, nil)
	if err == nil && j != nil {
		return j, nil
	}
	if err != nil && !waitShouldPoll(err) {
		return nil, err
	}
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		j, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		switch j.State {
		case "done", "failed", "canceled":
			return j, nil
		}
		if err := sleepCtx(ctx, interval); err != nil {
			return nil, fmt.Errorf("client: waiting for job %s (last state %s): %w", id, j.State, err)
		}
	}
}

// waitShouldPoll decides whether a StreamJob failure means "this job is
// unreachable" (propagate) or "this transport/server cannot stream"
// (fall back to polling): unknown_route is a server predating the events
// endpoint, a dropped stream means the job is still live server-side,
// and a transport error may be a proxy that cannot hold a stream open.
func waitShouldPoll(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		// The API answered: only a server without the route falls back;
		// unknown_job, jobs_disabled, draining etc. would fail a poll
		// identically, so surface them now.
		return ae.Code == "unknown_route"
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // stream dropped or transport failure: poll
}
