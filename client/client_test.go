package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"balarch/client"
	"balarch/internal/server"
)

// newTestClient binds a client to a fresh in-process API server.
func newTestClient(t *testing.T, opts ...client.Option) *client.Client {
	t.Helper()
	return client.NewFromHandler(server.New(server.Options{Parallelism: 2}).Handler(), opts...)
}

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:8080", "ftp://x", "http://"} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted an invalid base URL", bad)
		}
	}
	if _, err := client.New("http://127.0.0.1:8080/"); err != nil {
		t.Errorf("New rejected a valid base URL: %v", err)
	}
}

func TestAnalyzeTyped(t *testing.T) {
	c := newTestClient(t)
	a, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		PE:          client.PE{C: 50e6, IO: 1e6, M: 4096},
		Computation: client.Computation{Name: "fft"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §1 example: I/O bound, rebalanced at M = 2^20.
	if a.State != "io-bound" || a.BalancedMemory != 1<<20 {
		t.Errorf("analyze = %+v, want io-bound with balanced memory 2^20", a)
	}
}

func TestAPIErrorDecoding(t *testing.T) {
	c := newTestClient(t)
	_, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		PE:          client.PE{C: 1, IO: 1, M: 1},
		Computation: client.Computation{Name: "nope"},
	})
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not *APIError", err, err)
	}
	if ae.Status != http.StatusUnprocessableEntity || ae.Code != "unknown_computation" {
		t.Errorf("APIError = %+v, want 422 unknown_computation", ae)
	}
	if ae.RequestID == "" {
		t.Error("APIError.RequestID empty: server did not echo/assign X-Request-ID")
	}
	if ae.Error() == "" || ae.Message == "" {
		t.Error("APIError must render a message")
	}
}

func TestRequestIDEchoed(t *testing.T) {
	c := newTestClient(t)
	raw, err := c.Do(context.Background(), http.MethodGet, "/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Header.Get(client.RequestIDHeader) == "" {
		t.Error("healthz response has no X-Request-ID")
	}
}

func TestSweepAndMetricsRouteLatency(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	req := &client.SweepRequest{Kernel: "matmul", N: 64, Params: []int{4, 8}}
	cold, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || len(cold.Points) != 2 {
		t.Errorf("cold sweep = %+v, want 2 fresh points", cold)
	}
	warm, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second identical sweep not served from the memo")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rl, ok := m.RouteLatency["POST /v1/sweep"]
	if !ok {
		t.Fatalf("metrics route_latency missing POST /v1/sweep: %v", m.RouteLatency)
	}
	if rl.Count != 2 || rl.P99Seconds <= 0 || rl.MaxSeconds <= 0 {
		t.Errorf("sweep route latency = %+v, want count 2 with positive quantiles", rl)
	}
	if rl.P50Seconds > rl.P99Seconds {
		t.Errorf("p50 %v > p99 %v", rl.P50Seconds, rl.P99Seconds)
	}
}

func TestExperimentsListAndRun(t *testing.T) {
	c := newTestClient(t)
	ctx := context.Background()
	list, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 16 {
		t.Fatalf("experiment registry lists %d entries, want 16", len(list.Experiments))
	}
	run, err := c.RunExperiment(ctx, "E1")
	if err != nil {
		t.Fatal(err)
	}
	if !run.Pass || len(run.Result) == 0 {
		t.Errorf("E1 run = pass %v with %d result bytes, want a passing report", run.Pass, len(run.Result))
	}
	if _, err := c.RunExperiment(ctx, "E99"); err == nil {
		t.Error("unknown experiment id did not error")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	c := newTestClient(t)
	resp, err := c.Batch(context.Background(), &client.BatchRequest{Requests: []client.BatchItem{
		{Op: "analyze", Request: []byte(`{"pe":{"c":50e6,"io":1e6,"m":4096},"computation":{"name":"matmul"}}`)},
		{Op: "rebalance", Request: []byte(`{"computation":{"name":"fft"},"alpha":2,"m_old":1024}`)},
		{Op: "bogus", Request: []byte(`{}`)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Status != 200 || resp.Results[1].Status != 200 {
		t.Errorf("valid items got %d/%d, want 200/200", resp.Results[0].Status, resp.Results[1].Status)
	}
	if resp.Results[2].Status != 400 || resp.Results[2].Error == nil {
		t.Errorf("invalid op got %+v, want a 400 with an error body", resp.Results[2])
	}
}

func TestHealth(t *testing.T) {
	c := newTestClient(t)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Experiments != 16 {
		t.Errorf("health = %+v", h)
	}
}

// TestRetryOn503 exercises the retry option against a handler that fails
// twice before succeeding.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"try later"}}`))
			return
		}
		w.Write([]byte(`{"status":"ok","uptime_seconds":1,"experiments":16}`))
	})
	c := client.NewFromHandler(h, client.WithRetry(3, time.Millisecond))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("handler saw %d calls, want 3", got)
	}
}

// TestNoRetryByDefault: without WithRetry a 503 surfaces immediately as an
// APIError.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"overloaded","message":"try later"}}`))
	})
	c := client.NewFromHandler(h)
	_, err := c.Health(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("handler saw %d calls, want 1", calls.Load())
	}
}

// TestRetryRespectsContext: a cancelled context stops the retry loop.
func TestRetryRespectsContext(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c := client.NewFromHandler(h, client.WithRetry(100, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("retry loop ignored context cancellation")
	}
}

// TestDecodeAPIErrorFallback covers a non-envelope error body (e.g. a
// proxy's HTML page).
func TestDecodeAPIErrorFallback(t *testing.T) {
	raw := &client.Response{Status: 502, Header: http.Header{}, Body: []byte("<html>bad gateway</html>")}
	ae := client.DecodeAPIError(raw)
	if ae.Code != "http_error" || ae.Status != 502 {
		t.Errorf("fallback decode = %+v", ae)
	}
}

// newJobsTestClient binds a client to a jobs-enabled in-process server.
func newJobsTestClient(t *testing.T, opts ...client.Option) *client.Client {
	t.Helper()
	srv := server.New(server.Options{Parallelism: 2, StoreDir: t.TempDir()})
	if srv.JobsErr() != nil {
		t.Fatal(srv.JobsErr())
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return client.NewFromHandler(srv.Handler(), opts...)
}

// TestJobRoundTrip drives the typed async API end to end: submit, wait,
// fetch the result, and check it equals the synchronous answer.
func TestJobRoundTrip(t *testing.T) {
	c := newJobsTestClient(t)
	ctx := context.Background()
	req := &client.SweepRequest{Kernel: "matmul", N: 64, Params: []int{4, 8}}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{Op: "sweep", Request: body})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.Op != "sweep" {
		t.Fatalf("submitted job = %+v", j)
	}
	done, err := c.WaitForJob(ctx, j.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	raw, err := c.JobResult(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res client.SweepResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("result is not a SweepResponse: %v\n%s", err, raw)
	}
	if res.Kernel != "matmul" || len(res.Points) != 2 {
		t.Errorf("async sweep result = %+v", res)
	}

	// The cross-check the async contract promises: the synchronous
	// endpoint on a fresh (cold-memo) server returns the same bytes.
	fresh := newTestClient(t)
	syncRaw, err := fresh.Do(ctx, http.MethodPost, "/v1/sweep", body)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(syncRaw.Body) {
		t.Errorf("async result differs from sync response:\nasync: %s\nsync:  %s", raw, syncRaw.Body)
	}

	// List and cancel/delete round out the surface.
	list, err := c.ListJobs(ctx, "done")
	if err != nil || len(list.Jobs) != 1 {
		t.Errorf("ListJobs(done) = %+v, %v", list, err)
	}
	del, err := c.CancelJob(ctx, j.ID)
	if err != nil || del.State != "deleted" {
		t.Errorf("CancelJob on a done job = %+v, %v (want deleted)", del, err)
	}
}

// TestJobResultNotReady: JobResult on a queued job decodes the 409
// envelope.
func TestJobResultNotReady(t *testing.T) {
	srv := server.New(server.Options{Parallelism: 1, StoreDir: t.TempDir(), JobWorkers: -1})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	c := client.NewFromHandler(srv.Handler())
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
		Op:      "sweep",
		Request: []byte(`{"kernel": "matmul", "n": 64, "params": [4]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.JobResult(ctx, j.ID)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusConflict || ae.Code != "not_done" {
		t.Fatalf("JobResult on a queued job = %v, want 409 not_done", err)
	}
	if _, err := c.GetJob(ctx, "jmissing"); err == nil {
		t.Error("GetJob on an unknown id did not error")
	}
}

// TestOverTCP runs the same client against a real listener, covering the
// socket transport path New configures.
func TestOverTCP(t *testing.T) {
	srv := httptest.NewServer(server.New(server.Options{Parallelism: 2}).Handler())
	defer srv.Close()
	c, err := client.New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze(context.Background(), &client.AnalyzeRequest{
		PE:          client.PE{C: 50e6, IO: 1e6, M: 4096},
		Computation: client.Computation{Name: "matmul"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Computation != "matrix multiplication" {
		t.Errorf("analyze over TCP = %+v", a)
	}
}
