package client_test

// SSE consumption tests: StreamJob over a real listener (streams need
// incremental reads, which the in-process recorder transport cannot
// give), WaitForJob's stream-first-then-poll ladder, and the paging
// iterator.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"balarch/client"
	"balarch/internal/server"
)

// newJobsTCP starts a jobs-enabled server on a real listener and returns
// a client bound to it, plus the server for drain control.
func newJobsTCP(t *testing.T, opts server.Options) (*client.Client, *server.Server) {
	t.Helper()
	if opts.StoreDir == "" {
		opts.StoreDir = t.TempDir()
	}
	srv := server.New(opts)
	if err := srv.JobsErr(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestStreamJob(t *testing.T) {
	c, _ := newJobsTCP(t, server.Options{Parallelism: 2})
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
		Op: "sweep", Request: []byte(`{"kernel": "matmul", "n": 48, "params": [2, 4, 8]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	var events []client.JobEvent
	done, err := c.StreamJob(ctx, j.ID, func(ev client.JobEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done == nil || done.State != "done" || done.ID != j.ID {
		t.Fatalf("terminal status = %+v", done)
	}
	if len(events) == 0 || events[len(events)-1].Type != "done" {
		t.Fatalf("callback saw %d events, want a trailing done", len(events))
	}
	for _, ev := range events {
		switch ev.Type {
		case "state", "done":
			if ev.Job == nil {
				t.Fatalf("%s event without a job payload", ev.Type)
			}
		case "progress":
			if ev.Progress == nil || ev.Progress.ID != j.ID {
				t.Fatalf("progress event payload = %+v", ev.Progress)
			}
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}

	// Streaming an already-terminal job yields its done event directly.
	again, err := c.StreamJob(ctx, j.ID, nil)
	if err != nil || again.State != "done" {
		t.Fatalf("stream of a terminal job = %+v, %v", again, err)
	}

	// Unknown job: the typed envelope, not a stream.
	var ae *client.APIError
	if _, err := c.StreamJob(ctx, "jdeadbeefdeadbeef", nil); !errors.As(err, &ae) || ae.Code != "unknown_job" {
		t.Fatalf("unknown job stream err = %v, want unknown_job APIError", err)
	}
}

func TestStreamJobStopAndDrop(t *testing.T) {
	// Paused workers: the job never finishes, so the stream only ends by
	// callback request or server drain.
	c, srv := newJobsTCP(t, server.Options{Parallelism: 1, JobWorkers: -1})
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
		Op: "sweep", Request: []byte(`{"kernel": "matmul", "n": 32, "params": [2]}`),
	})
	if err != nil {
		t.Fatal(err)
	}

	// ErrStopStream ends the stream cleanly: nil status, nil error.
	st, err := c.StreamJob(ctx, j.ID, func(ev client.JobEvent) error {
		return client.ErrStopStream
	})
	if st != nil || err != nil {
		t.Fatalf("stopped stream = %+v, %v; want nil, nil", st, err)
	}

	// Server drain mid-stream surfaces as *StreamDroppedError.
	type result struct {
		st  *client.JobStatus
		err error
	}
	got := make(chan result, 1)
	started := make(chan struct{})
	go func() {
		st, err := c.StreamJob(ctx, j.ID, func(ev client.JobEvent) error {
			select {
			case <-started:
			default:
				close(started)
			}
			return nil
		})
		got <- result{st, err}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("stream never delivered its first event")
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Close(drainCtx)
	select {
	case r := <-got:
		var dropped *client.StreamDroppedError
		if !errors.As(r.err, &dropped) || dropped.Reason != "shutting_down" {
			t.Fatalf("drained stream = %+v, %v; want StreamDroppedError(shutting_down)", r.st, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on server drain")
	}
}

func TestWaitForJobPrefersStream(t *testing.T) {
	srv := server.New(server.Options{Parallelism: 2, StoreDir: t.TempDir()})
	if err := srv.JobsErr(); err != nil {
		t.Fatal(err)
	}
	// Count status polls (GET /v1/jobs/{id} without /events) to prove
	// the wait rode the stream.
	var polls atomic.Int64
	h := srv.Handler()
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") &&
			!strings.HasSuffix(r.URL.Path, "/events") {
			polls.Add(1)
		}
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(counting)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
		Op: "sweep", Request: []byte(`{"kernel": "matmul", "n": 48, "params": [2, 4]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitForJob(ctx, j.ID, time.Millisecond)
	if err != nil || done.State != "done" {
		t.Fatalf("WaitForJob = %+v, %v", done, err)
	}
	if n := polls.Load(); n != 0 {
		t.Fatalf("WaitForJob polled %d times despite a working stream", n)
	}
}

func TestWaitForJobFallsBackToPolling(t *testing.T) {
	srv := server.New(server.Options{Parallelism: 2, StoreDir: t.TempDir()})
	if err := srv.JobsErr(); err != nil {
		t.Fatal(err)
	}
	// Simulate yesterday's daemon: the events route answers the
	// catch-all's unknown_route envelope.
	h := srv.Handler()
	old := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"unknown_route","message":"no route"}}`))
			return
		}
		h.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(old)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
		Op: "sweep", Request: []byte(`{"kernel": "matmul", "n": 48, "params": [2]}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.WaitForJob(ctx, j.ID, time.Millisecond)
	if err != nil || done.State != "done" {
		t.Fatalf("WaitForJob against an old server = %+v, %v", done, err)
	}
}

func TestJobsPager(t *testing.T) {
	c, _ := newJobsTCP(t, server.Options{Parallelism: 2})
	ctx := context.Background()
	want := make(map[string]bool)
	for i := 0; i < 5; i++ {
		j, err := c.SubmitJob(ctx, &client.JobSubmitRequest{
			Op: "analyze",
			Request: []byte(fmt.Sprintf(
				`{"pe": {"c": %de6, "io": 1e6, "m": 4096}, "computation": {"name": "fft"}}`, i+2)),
		})
		if err != nil {
			t.Fatal(err)
		}
		want[j.ID] = true
	}

	pager := c.Jobs("", 2)
	got := make(map[string]bool)
	pages := 0
	for pager.More() {
		page, err := pager.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		if len(page.Jobs) > 2 {
			t.Fatalf("page %d has %d jobs, limit was 2", pages, len(page.Jobs))
		}
		for _, j := range page.Jobs {
			if got[j.ID] {
				t.Fatalf("job %s returned twice", j.ID)
			}
			got[j.ID] = true
		}
		if pages > 10 {
			t.Fatal("pager did not terminate")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pager yielded %d jobs, want %d", len(got), len(want))
	}
	if pages < 3 {
		t.Fatalf("5 jobs at limit 2 took %d pages, want ≥ 3", pages)
	}

	// One-shot page call: limit honored, cursor chains.
	page1, err := c.ListJobsPage(ctx, "", 3, "")
	if err != nil || len(page1.Jobs) != 3 || page1.NextCursor == "" {
		t.Fatalf("ListJobsPage(3) = %d jobs, cursor %q, %v", len(page1.Jobs), page1.NextCursor, err)
	}
	page2, err := c.ListJobsPage(ctx, "", 3, page1.NextCursor)
	if err != nil || len(page2.Jobs) != 2 || page2.NextCursor != "" {
		t.Fatalf("ListJobsPage(page 2) = %d jobs, cursor %q, %v", len(page2.Jobs), page2.NextCursor, err)
	}

	// A forged cursor draws the typed 400.
	var ae *client.APIError
	if _, err := c.ListJobsPage(ctx, "", 2, "not-a-cursor"); !errors.As(err, &ae) || ae.Code != "bad_cursor" {
		t.Fatalf("forged cursor err = %v, want bad_cursor APIError", err)
	}

	// The serialized JSON keeps next_cursor out of unpaged responses.
	raw, err := c.Do(ctx, http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	var unpaged map[string]json.RawMessage
	if err := json.Unmarshal(raw.Body, &unpaged); err != nil {
		t.Fatal(err)
	}
	if _, ok := unpaged["next_cursor"]; ok {
		t.Fatal("unpaged /v1/jobs serialized next_cursor")
	}
}

func TestAPIIndexTyped(t *testing.T) {
	c := newTestClient(t)
	idx, err := c.APIIndex(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Service == "" || len(idx.Routes) == 0 || len(idx.ErrorCodes) == 0 {
		t.Fatalf("APIIndex = %+v", idx)
	}
}
