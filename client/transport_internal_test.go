package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// TestTransportPerHost pins the connection-pool regression the registry
// exists to prevent: two clients against two different hosts must get two
// different transports (so one host's churn cannot evict the other's idle
// pool), while two clients against the same host share one.
func TestTransportPerHost(t *testing.T) {
	stamp := func(name string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("X-Test-Host", name)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte(`{}`))
		})
	}
	srvA := httptest.NewServer(stamp("a"))
	defer srvA.Close()
	srvB := httptest.NewServer(stamp("b"))
	defer srvB.Close()

	ca, err := New(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New(srvB.URL)
	if err != nil {
		t.Fatal(err)
	}
	ca2, err := New(srvA.URL)
	if err != nil {
		t.Fatal(err)
	}

	ta, ok := ca.http.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("client transport is %T, want *http.Transport", ca.http.Transport)
	}
	tb := cb.http.Transport.(*http.Transport)
	if ta == tb {
		t.Fatalf("clients for %s and %s share one transport; want per-host pools", srvA.URL, srvB.URL)
	}
	if ta2 := ca2.http.Transport.(*http.Transport); ta2 != ta {
		t.Fatalf("two clients for %s got different transports; want a shared per-host pool", srvA.URL)
	}

	// The per-host sizing is the point — the stdlib defaults (2 idle
	// conns per host) are what the registry replaces.
	if ta.MaxConnsPerHost != transportConnsPerHost ||
		ta.MaxIdleConnsPerHost != transportConnsPerHost ||
		ta.MaxIdleConns != transportConnsPerHost {
		t.Fatalf("transport sized %d/%d/%d, want %d each",
			ta.MaxConnsPerHost, ta.MaxIdleConnsPerHost, ta.MaxIdleConns, transportConnsPerHost)
	}

	// Distinct transports still reach the right hosts.
	ctx := context.Background()
	for _, tc := range []struct {
		c    *Client
		want string
	}{{ca, "a"}, {cb, "b"}, {ca2, "a"}} {
		resp, err := tc.c.Do(ctx, http.MethodGet, "/v1/", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("X-Test-Host"); got != tc.want {
			t.Fatalf("request landed on host %q, want %q", got, tc.want)
		}
	}

	// The registry keys on host alone: path and scheme quirks in the base
	// URL must not mint extra pools.
	u, _ := url.Parse(srvA.URL)
	if got := transportForHost(u.Host); got != ta {
		t.Fatalf("transportForHost(%q) minted a new transport", u.Host)
	}
}
