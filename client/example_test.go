package client_test

import (
	"context"
	"fmt"
	"log"

	"balarch"
	"balarch/client"
)

// ExampleClient drives the full API stack in process: the handler from
// balarch.NewServerHandler, the typed client bound to it with
// NewFromHandler. Swap NewFromHandler for New("http://host:8080") to talk
// to a running balarchd.
func ExampleClient() {
	h := balarch.NewServerHandler(balarch.ServerOptions{Parallelism: 1})
	c := client.NewFromHandler(h)
	ctx := context.Background()

	// The paper's §1 example: a 50 MOPS / 1 Mword/s PE running an FFT.
	a, err := c.Analyze(ctx, &client.AnalyzeRequest{
		PE:          client.PE{C: 50e6, IO: 1e6, M: 4096},
		Computation: client.Computation{Name: "fft"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state: %s\n", a.State)
	fmt.Printf("balanced at M = %.0f words\n", a.BalancedMemory)

	// The central question: C/IO doubles — how much memory restores
	// balance? For the FFT the law is M_new = M_old^α.
	r, err := c.Rebalance(ctx, &client.RebalanceRequest{
		Computation: client.Computation{Name: "fft"},
		Alpha:       2,
		MOld:        4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M_new (closed form) = %.0f words\n", r.MClosedForm)

	// Output:
	// state: io-bound
	// balanced at M = 1048576 words
	// M_new (closed form) = 16777216 words
}
